package graph

import (
	"fmt"
	"sync"
	"testing"
)

// bulkTestGraph builds a connected user/item graph big enough that bulk
// batches exceed BulkApplyThreshold.
func bulkTestGraph(users, items int) *Graph {
	b := NewBuilder()
	uids := make([]NodeID, users)
	for i := range uids {
		uids[i] = b.Node([]string{TypeUser}, "name", fmt.Sprintf("u%d", i))
	}
	iids := make([]NodeID, items)
	for i := range iids {
		iids[i] = b.Node([]string{TypeItem}, "name", fmt.Sprintf("i%d", i))
	}
	for i, u := range uids {
		b.Link(u, uids[(i+1)%len(uids)], []string{TypeConnect, SubtypeFriend})
		l := NewLink(b.IDs().NextLink(), u, iids[i%len(iids)], TypeAct, SubtypeTag)
		l.Attrs.Add("tags", fmt.Sprintf("t%d", i%7))
		if err := b.Graph().AddLink(l); err != nil {
			panic(err)
		}
	}
	return b.Graph()
}

// TestBulkApplyAllSnapshotIsolation: a batch big enough to trigger the
// bulk window must leave every pre-batch snapshot byte-for-byte intact,
// and the post-batch graph must equal the one produced by the persistent
// per-mutation path.
func TestBulkApplyAllSnapshotIsolation(t *testing.T) {
	g := bulkTestGraph(40, 20)
	snap := g.ShallowClone()
	wantNodes, wantLinks := snap.NumNodes(), snap.NumLinks()

	var muts []Mutation
	ids := IDSourceFor(g)
	for i := 0; i < 3*BulkApplyThreshold; i++ {
		switch i % 3 {
		case 0:
			n := NewNode(ids.NextNode(), TypeUser)
			muts = append(muts, Mutation{Kind: MutAddNode, Node: n})
		case 1:
			l := NewLink(ids.NextLink(), 1, 2, TypeConnect)
			muts = append(muts, Mutation{Kind: MutAddLink, Link: l})
		case 2:
			l := NewLink(ids.NextLink(), 2, 3, TypeAct, SubtypeTag)
			l.Attrs.Add("tags", fmt.Sprintf("bulk%d", i))
			muts = append(muts, Mutation{Kind: MutAddLink, Link: l})
		}
	}

	// Reference: the same batch through the guaranteed-persistent path.
	ref := snap.ShallowClone()
	for _, m := range muts { // one at a time: never crosses the threshold
		if err := ref.ApplyAll([]Mutation{m}); err != nil {
			t.Fatal(err)
		}
	}

	if err := g.ApplyAll(muts); err != nil {
		t.Fatal(err)
	}
	if g.bulk != nil {
		t.Fatal("ApplyAll left its bulk window open")
	}
	if snap.NumNodes() != wantNodes || snap.NumLinks() != wantLinks {
		t.Fatalf("snapshot grew to %d/%d under bulk ApplyAll", snap.NumNodes(), snap.NumLinks())
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot corrupted: %v", err)
	}
	if !g.Equal(ref) {
		t.Fatal("bulk ApplyAll result differs from persistent per-mutation replay")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("bulk-applied graph invalid: %v", err)
	}
}

// TestBulkWindowSealedBySnapshot: ShallowClone must close an open window
// so the snapshot and the origin can never share in-place-mutable nodes.
func TestBulkWindowSealedBySnapshot(t *testing.T) {
	g := bulkTestGraph(10, 5)
	g.BeginBulk()
	if err := g.AddNode(NewNode(IDSourceFor(g).NextNode(), TypeUser)); err != nil {
		t.Fatal(err)
	}
	snap := g.ShallowClone()
	if g.bulk != nil {
		t.Fatal("ShallowClone did not seal the origin's bulk window")
	}
	// Writes after the snapshot must copy-on-write again.
	n := snap.NumNodes()
	if err := g.AddNode(NewNode(IDSourceFor(g).NextNode(), TypeUser)); err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes() != n {
		t.Fatal("snapshot observed a post-seal write")
	}
}

// TestBulkCloneAndInducedMatchPersistent: the transient-built Clone and
// induced subgraphs must be element-for-element identical to what the
// persistent path builds, with deterministic adjacency order intact.
func TestBulkCloneAndInducedMatchPersistent(t *testing.T) {
	g := bulkTestGraph(60, 30)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("Clone differs from origin")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Mutating the clone must not reach the origin.
	c.RemoveNode(c.NodeIDs()[0])
	if g.Equal(c) {
		t.Fatal("clone mutation reached origin")
	}

	keep := make(map[NodeID]struct{})
	for i, id := range g.NodeIDs() {
		if i%2 == 0 {
			keep[id] = struct{}{}
		}
	}
	sub := g.InducedByNodes(keep)
	if err := sub.Validate(); err != nil {
		t.Fatalf("induced subgraph invalid: %v", err)
	}
	for _, l := range sub.Links() {
		if !g.HasLink(l.ID) {
			t.Fatalf("induced subgraph invented link %d", l.ID)
		}
	}

	links := make(map[LinkID]struct{})
	for i, id := range g.LinkIDs() {
		if i%3 == 0 {
			links[id] = struct{}{}
		}
	}
	sub2 := g.InducedByLinks(links)
	if err := sub2.Validate(); err != nil {
		t.Fatalf("link-induced subgraph invalid: %v", err)
	}
	if sub2.NumLinks() != len(links) {
		t.Fatalf("link-induced subgraph holds %d links, want %d", sub2.NumLinks(), len(links))
	}
}

// TestConcurrentShallowClonesOfSealedGraph: snapshotting a published
// (sealed) graph is a pure read — ShallowClone seals via EndBulk, which
// must not store to the bulk field when no window is open, or two
// concurrent snapshots would be a write-write race (-race enforced).
func TestConcurrentShallowClonesOfSealedGraph(t *testing.T) {
	g := bulkTestGraph(20, 10) // sealed by Builder.Graph()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := g.ShallowClone()
				if c.NumNodes() != g.NumNodes() {
					t.Error("snapshot lost nodes")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestBulkBuiltGraphSafeForConcurrentReaders: a graph built inside a bulk
// window and then sealed (Builder.Graph) must be freely readable from
// several goroutines — run under -race this proves sealing ends in-place
// mutation of anything readers can reach.
func TestBulkBuiltGraphSafeForConcurrentReaders(t *testing.T) {
	g := bulkTestGraph(50, 25) // Builder seals on Graph()
	snap := g.ShallowClone()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total := 0
			for _, id := range snap.NodeIDs() {
				total += snap.OutDegree(id) + snap.InDegree(id)
				for _, l := range snap.Out(id) {
					_ = l.Tgt
				}
			}
			_ = total
		}()
	}
	// A concurrent successor keeps mutating its own version.
	ids := IDSourceFor(g)
	w := g.ShallowClone()
	for i := 0; i < 50; i++ {
		if err := w.AddNode(NewNode(ids.NextNode(), TypeUser)); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()
}
