package graph

import (
	"reflect"
	"testing"
)

func TestNewAttrs(t *testing.T) {
	a := NewAttrs("type", "user", "type", "traveler", "name", "John")
	if got := a.Get("name"); got != "John" {
		t.Errorf("Get(name) = %q, want John", got)
	}
	if got := a.All("type"); !reflect.DeepEqual(got, []string{"user", "traveler"}) {
		t.Errorf("All(type) = %v", got)
	}
}

func TestNewAttrsOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd kv count")
		}
	}()
	NewAttrs("only-key")
}

func TestAttrsAddDeduplicates(t *testing.T) {
	a := Attrs{}
	a.Add("tags", "baseball")
	a.Add("tags", "baseball")
	a.Add("tags", "rockies")
	if got := a.All("tags"); len(got) != 2 {
		t.Errorf("duplicate value stored: %v", got)
	}
}

func TestAttrsSupersetSatisfaction(t *testing.T) {
	// The paper: node satisfies att=v1..vk iff its value set is a superset.
	a := NewAttrs("type", "item", "type", "city", "keywords", "skiing")
	cases := []struct {
		key  string
		want []string
		ok   bool
	}{
		{"type", []string{"city"}, true},
		{"type", []string{"item", "city"}, true},
		{"type", []string{"city", "hotel"}, false},
		{"keywords", []string{"skiing"}, true},
		{"missing", []string{"x"}, false},
		{"type", nil, true}, // empty requirement always satisfied
	}
	for _, c := range cases {
		if got := a.Superset(c.key, c.want); got != c.ok {
			t.Errorf("Superset(%s, %v) = %v, want %v", c.key, c.want, got, c.ok)
		}
	}
}

func TestAttrsNumeric(t *testing.T) {
	a := Attrs{}
	a.SetFloat("rating", 0.5)
	if v, ok := a.Float("rating"); !ok || v != 0.5 {
		t.Errorf("Float(rating) = %v,%v", v, ok)
	}
	a.SetInt("count", 42)
	if v, ok := a.Int("count"); !ok || v != 42 {
		t.Errorf("Int(count) = %v,%v", v, ok)
	}
	if _, ok := a.Float("missing"); ok {
		t.Error("Float(missing) reported ok")
	}
	a.Set("junk", "not-a-number")
	if _, ok := a.Float("junk"); ok {
		t.Error("Float(junk) reported ok")
	}
	if _, ok := a.Int("junk"); ok {
		t.Error("Int(junk) reported ok")
	}
}

func TestAttrsCloneIndependence(t *testing.T) {
	a := NewAttrs("k", "v1")
	c := a.Clone()
	c.Add("k", "v2")
	c.Set("new", "x")
	if len(a.All("k")) != 1 || a.Get("new") != "" {
		t.Errorf("clone mutated original: %v", a)
	}
	var nilA Attrs
	if nilA.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestAttrsMerge(t *testing.T) {
	a := NewAttrs("type", "user", "name", "John")
	b := NewAttrs("type", "traveler", "name", "John", "city", "Denver")
	a.Merge(b)
	if !a.Superset("type", []string{"user", "traveler"}) {
		t.Errorf("merge lost types: %v", a)
	}
	if len(a.All("name")) != 1 {
		t.Errorf("merge duplicated name: %v", a.All("name"))
	}
	if a.Get("city") != "Denver" {
		t.Errorf("merge missed new key: %v", a)
	}
}

func TestAttrsEqual(t *testing.T) {
	a := NewAttrs("k", "v1", "k", "v2")
	b := NewAttrs("k", "v2", "k", "v1") // order differs, set equal
	if !a.Equal(b) {
		t.Error("set-equal attrs reported unequal")
	}
	c := NewAttrs("k", "v1")
	if a.Equal(c) {
		t.Error("different value counts reported equal")
	}
	d := NewAttrs("k2", "v1", "k2", "v2")
	if a.Equal(d) {
		t.Error("different keys reported equal")
	}
}

func TestAttrsText(t *testing.T) {
	a := NewAttrs("name", "Denver", "keywords", "Skiing")
	txt := a.Text()
	if txt != "skiing denver" && txt != "denver skiing" {
		// keys iterate sorted: keywords < name
		t.Errorf("Text() = %q", txt)
	}
}

func TestAttrsStringDeterministic(t *testing.T) {
	a := NewAttrs("b", "2", "a", "1")
	if got := a.String(); got != "{a=1; b=2}" {
		t.Errorf("String() = %q", got)
	}
}
