package graph

import (
	"reflect"
	"testing"
)

// chainGraph builds 1 -> 2 -> 3 -> 4 with 'match' then 'visit' then 'visit'
// links, plus an isolated node 5.
func chainGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.Node([]string{TypeUser})
	}
	b.Link(1, 2, []string{TypeMatch})
	b.Link(2, 3, []string{TypeAct, SubtypeVisit})
	b.Link(3, 4, []string{TypeAct, SubtypeVisit})
	return b.Graph()
}

func TestBFSOrderAndDepth(t *testing.T) {
	g := chainGraph(t)
	var order []NodeID
	var depths []int
	g.BFS(1, true, false, func(id NodeID, d int) bool {
		order = append(order, id)
		depths = append(depths, d)
		return true
	})
	if !reflect.DeepEqual(order, []NodeID{1, 2, 3, 4}) {
		t.Errorf("order = %v", order)
	}
	if !reflect.DeepEqual(depths, []int{0, 1, 2, 3}) {
		t.Errorf("depths = %v", depths)
	}
}

func TestBFSStop(t *testing.T) {
	g := chainGraph(t)
	count := 0
	g.BFS(1, true, true, func(NodeID, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("visited %d nodes after stop", count)
	}
}

func TestBFSMissingStart(t *testing.T) {
	g := chainGraph(t)
	called := false
	g.BFS(99, true, true, func(NodeID, int) bool { called = true; return true })
	if called {
		t.Error("BFS visited from absent start")
	}
}

func TestReachable(t *testing.T) {
	g := chainGraph(t)
	r := g.Reachable(3)
	// Following both directions, all of the chain is reachable.
	want := map[NodeID]struct{}{1: {}, 2: {}, 3: {}, 4: {}}
	if !reflect.DeepEqual(r, want) {
		t.Errorf("Reachable(3) = %v", r)
	}
	if _, ok := g.Reachable(5)[5]; !ok {
		t.Error("isolated node should reach itself")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := chainGraph(t)
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if !reflect.DeepEqual(comps[0], []NodeID{1, 2, 3, 4}) {
		t.Errorf("first component = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []NodeID{5}) {
		t.Errorf("second component = %v", comps[1])
	}
}

func TestPathsMatching(t *testing.T) {
	g := chainGraph(t)
	// match-visit pattern from node 1 (the Figure 2 shape).
	paths := g.PathsMatching(1, 2, func(step int, l *Link) bool {
		if step == 0 {
			return l.HasType(TypeMatch)
		}
		return l.HasType(SubtypeVisit)
	})
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	if paths[0].Last() != 3 {
		t.Errorf("path end = %d", paths[0].Last())
	}
	if len(paths[0]) != 2 {
		t.Errorf("path len = %d", len(paths[0]))
	}
}

func TestPathsMatchingBranching(t *testing.T) {
	b := NewBuilder()
	john := b.Node([]string{TypeUser}, "name", "John")
	u2 := b.Node([]string{TypeUser})
	u3 := b.Node([]string{TypeUser})
	d1 := b.Node([]string{TypeItem})
	d2 := b.Node([]string{TypeItem})
	b.Link(john, u2, []string{TypeMatch})
	b.Link(john, u3, []string{TypeMatch})
	b.Link(u2, d1, []string{SubtypeVisit})
	b.Link(u2, d2, []string{SubtypeVisit})
	b.Link(u3, d1, []string{SubtypeVisit})
	g := b.Graph()

	paths := g.PathsMatching(john, 2, func(step int, l *Link) bool {
		if step == 0 {
			return l.HasType(TypeMatch)
		}
		return l.HasType(SubtypeVisit)
	})
	if len(paths) != 3 {
		t.Fatalf("want 3 match-visit paths, got %d", len(paths))
	}
	ends := map[NodeID]int{}
	for _, p := range paths {
		ends[p.Last()]++
	}
	if ends[d1] != 2 || ends[d2] != 1 {
		t.Errorf("path ends = %v", ends)
	}
}

func TestPathsMatchingEdgeCases(t *testing.T) {
	g := chainGraph(t)
	if p := g.PathsMatching(1, 0, nil); p != nil {
		t.Error("zero steps should give nil")
	}
	if p := g.PathsMatching(42, 1, func(int, *Link) bool { return true }); p != nil {
		t.Error("absent start should give nil")
	}
	var empty Path
	if empty.Last() != 0 {
		t.Error("empty path Last should be 0")
	}
}
