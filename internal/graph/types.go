// Package graph implements the social content graph data model of
// SocialScope (CIDR 2009, Section 4): a logical graph whose nodes represent
// physical and abstract entities (users, items, topics, groups) and whose
// links represent connections and activities between them (friendship,
// tagging, reviews, derived matches).
//
// Nodes and links carry schema-less, multi-valued structural attributes,
// including a mandatory multi-valued "type" attribute. The package provides
// the storage primitives that the algebra in internal/core manipulates:
// id-addressed nodes and links, adjacency, induced subgraphs, deterministic
// iteration order, and consolidation of nodes and links by id.
package graph

// Basic node types from the paper's evolving catalog (Section 4). The typing
// system is open: any string is a legal type, and a node or link may carry
// several. These constants cover the types the paper names explicitly.
const (
	TypeUser  = "user"
	TypeItem  = "item"
	TypeTopic = "topic"
	TypeGroup = "group"
)

// Basic link types from the paper's catalog: connect (e.g. friend),
// act (e.g. tag, review, click, visit), match (derived similarity), and
// belong (membership in a topic or group).
const (
	TypeConnect = "connect"
	TypeAct     = "act"
	TypeMatch   = "match"
	TypeBelong  = "belong"
)

// Common subtypes used throughout the paper's examples. They always appear
// alongside a basic type, e.g. type='connect, friend'.
const (
	SubtypeFriend  = "friend"
	SubtypeContact = "contact"
	SubtypeTag     = "tag"
	SubtypeReview  = "review"
	SubtypeClick   = "click"
	SubtypeVisit   = "visit"
	SubtypeRating  = "rating"
)

// NodeID identifies a node within a social content site's id space.
type NodeID int64

// LinkID identifies a link within a social content site's id space.
type LinkID int64

// Direction selects one endpoint of a link. The algebra's directional
// conditions (δ in Definitions 5 and 6) and aggregation group-by constraints
// (d in Definition 9) are expressed in terms of Direction.
type Direction uint8

const (
	// Src selects the source endpoint of a link.
	Src Direction = iota
	// Tgt selects the target endpoint of a link.
	Tgt
)

// Opposite returns the other endpoint selector. The composition operator
// uses it to pick the surviving endpoints of a composed link (Definition 5
// refers to it as delta-bar).
func (d Direction) Opposite() Direction {
	if d == Src {
		return Tgt
	}
	return Src
}

// String returns "src" or "tgt", matching the paper's notation.
func (d Direction) String() string {
	if d == Src {
		return "src"
	}
	return "tgt"
}

// End returns the node id at direction d of the given endpoints.
func (d Direction) End(src, tgt NodeID) NodeID {
	if d == Src {
		return src
	}
	return tgt
}
