package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a social content graph for reporting and for the Data
// Manager's refresh decisions (Section 6).
type Stats struct {
	Nodes         int
	Links         int
	NodesByType   map[string]int
	LinksByType   map[string]int
	MaxOutDegree  int
	MaxInDegree   int
	AvgOutDegree  float64
	IsolatedNodes int
	Components    int
}

// ComputeStats walks the graph once (plus a component pass) and returns its
// summary.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:       g.NumNodes(),
		Links:       g.NumLinks(),
		NodesByType: make(map[string]int),
		LinksByType: make(map[string]int),
	}
	g.nodes.Range(func(_ NodeID, n *Node) bool {
		for _, t := range n.Types {
			s.NodesByType[t]++
		}
		od, id := g.OutDegree(n.ID), g.InDegree(n.ID)
		if od > s.MaxOutDegree {
			s.MaxOutDegree = od
		}
		if id > s.MaxInDegree {
			s.MaxInDegree = id
		}
		if od+id == 0 {
			s.IsolatedNodes++
		}
		return true
	})
	g.links.Range(func(_ LinkID, l *Link) bool {
		for _, t := range l.Types {
			s.LinksByType[t]++
		}
		return true
	})
	if s.Nodes > 0 {
		s.AvgOutDegree = float64(s.Links) / float64(s.Nodes)
	}
	s.Components = len(g.ConnectedComponents())
	return s
}

// CountNodes returns how many nodes carry the given type.
func (g *Graph) CountNodes(nodeType string) int {
	n := 0
	g.nodes.Range(func(_ NodeID, nd *Node) bool {
		if nd.HasType(nodeType) {
			n++
		}
		return true
	})
	return n
}

// CountLinks returns how many links carry the given type.
func (g *Graph) CountLinks(linkType string) int {
	n := 0
	g.links.Range(func(_ LinkID, l *Link) bool {
		if l.HasType(linkType) {
			n++
		}
		return true
	})
	return n
}

// NodesOfType returns the nodes carrying the given type, ordered by id.
func (g *Graph) NodesOfType(nodeType string) []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		if n.HasType(nodeType) {
			out = append(out, n)
		}
	}
	return out
}

// LinksOfType returns the links carrying the given type, ordered by id.
func (g *Graph) LinksOfType(linkType string) []*Link {
	var out []*Link
	for _, l := range g.Links() {
		if l.HasType(linkType) {
			out = append(out, l)
		}
	}
	return out
}

// DegreeHistogram returns (degree -> node count) for total degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	g.nodes.Range(func(id NodeID, _ *Node) bool {
		h[g.OutDegree(id)+g.InDegree(id)]++
		return true
	})
	return h
}

// String renders the stats as a small report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes=%d links=%d components=%d isolated=%d maxOut=%d maxIn=%d avgOut=%.2f\n",
		s.Nodes, s.Links, s.Components, s.IsolatedNodes, s.MaxOutDegree, s.MaxInDegree, s.AvgOutDegree)
	sb.WriteString("node types:")
	for _, t := range sortedKeys(s.NodesByType) {
		fmt.Fprintf(&sb, " %s=%d", t, s.NodesByType[t])
	}
	sb.WriteString("\nlink types:")
	for _, t := range sortedKeys(s.LinksByType) {
		fmt.Fprintf(&sb, " %s=%d", t, s.LinksByType[t])
	}
	return sb.String()
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
