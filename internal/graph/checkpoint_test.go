package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func buildCheckpointFixture(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for i := 1; i <= 40; i++ {
		n := NewNode(NodeID(i), "user")
		n.Attrs.Add("name", "u"+string(rune('a'+i%26)))
		if i%3 == 0 {
			n.SetScore(float64(i) / 7)
		}
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	lid := LinkID(0)
	for i := 1; i <= 40; i++ {
		for j := i + 1; j <= 40; j += 7 {
			lid++
			l := NewLink(lid, NodeID(i), NodeID(j), "act", "tag")
			l.Attrs.Add("tags", "t"+string(rune('a'+int(lid)%26)))
			if err := g.AddLink(l); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func assertGraphIdentical(t *testing.T, want, got *Graph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("recovered graph invalid: %v", err)
	}
	if !want.Equal(got) {
		t.Fatalf("graphs differ: %v vs %v", want, got)
	}
	if got.MaxNodeID() != want.MaxNodeID() || got.MaxLinkID() != want.MaxLinkID() {
		t.Fatalf("high-water marks: got %d/%d, want %d/%d",
			got.MaxNodeID(), got.MaxLinkID(), want.MaxNodeID(), want.MaxLinkID())
	}
	// Adjacency must be rebuilt byte-for-byte: same lists, same order.
	for _, id := range want.NodeIDs() {
		wo, go_ := want.Out(id), got.Out(id)
		if len(wo) != len(go_) {
			t.Fatalf("node %d out-degree: %d vs %d", id, len(go_), len(wo))
		}
		for i := range wo {
			if wo[i].ID != go_[i].ID {
				t.Fatalf("node %d out[%d]: %d vs %d", id, i, go_[i].ID, wo[i].ID)
			}
		}
		wi, gi := want.In(id), got.In(id)
		if len(wi) != len(gi) {
			t.Fatalf("node %d in-degree: %d vs %d", id, len(gi), len(wi))
		}
		for i := range wi {
			if wi[i].ID != gi[i].ID {
				t.Fatalf("node %d in[%d]: %d vs %d", id, i, gi[i].ID, wi[i].ID)
			}
		}
	}
}

func TestGraphCheckpointRoundTrip(t *testing.T) {
	g := buildCheckpointFixture(t)
	data := NewCkptWriter().AppendCheckpoint(nil, g)
	got, err := NewCkptReader().Apply(data)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphIdentical(t, g, got)
}

func TestGraphCheckpointDeltaChainSmaller(t *testing.T) {
	g := buildCheckpointFixture(t)
	w := NewCkptWriter()
	r := NewCkptReader()
	full := w.AppendCheckpoint(nil, g)
	if _, err := r.Apply(full); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 6; step++ {
		// A small append-heavy batch against a graph of hundreds of
		// elements: the delta must be a fraction of the full encoding.
		for i := 0; i < 3; i++ {
			id := g.MaxNodeID() + 1
			if err := g.AddNode(NewNode(id, "user")); err != nil {
				t.Fatal(err)
			}
			lid := g.MaxLinkID() + 1
			tgt := NodeID(1 + rng.Intn(int(id)-1))
			if err := g.AddLink(NewLink(lid, id, tgt, "act", "tag")); err != nil {
				t.Fatal(err)
			}
		}
		delta := w.AppendCheckpoint(nil, g)
		if len(delta) >= len(full)/2 {
			t.Fatalf("step %d: delta %dB vs full %dB — sharing not exploited", step, len(delta), len(full))
		}
		got, err := r.Apply(delta)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		assertGraphIdentical(t, g, got)
	}
}

func TestGraphCheckpointEmptyGraph(t *testing.T) {
	g := New()
	data := NewCkptWriter().AppendCheckpoint(nil, g)
	got, err := NewCkptReader().Apply(data)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphIdentical(t, g, got)
}

func TestGraphCheckpointRejectsGarbage(t *testing.T) {
	g := buildCheckpointFixture(t)
	data := NewCkptWriter().AppendCheckpoint(nil, g)
	for i := 0; i < len(data); i += 3 {
		if _, err := NewCkptReader().Apply(data[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x55
		// Mutations must decode cleanly or error — never panic; the
		// post-decode Validate catches structurally-plausible damage.
		_, _ = NewCkptReader().Apply(mut)
	}
}

func TestMutationBatchCodecRoundTrip(t *testing.T) {
	g := buildCheckpointFixture(t)
	log := RecordInto(g)
	if err := g.AddNode(NewNode(100, "user", "traveler")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(NewLink(9000, 100, 1, "act", "tag")); err != nil {
		t.Fatal(err)
	}
	merged := NewLink(9000, 100, 1, "act")
	merged.Attrs.Add("tags", "beach")
	merged.SetScore(0.25)
	if err := g.PutLink(merged); err != nil { // emits MutPutLink with Prev
		t.Fatal(err)
	}
	n100 := NewNode(100, "reviewer")
	g.PutNode(n100) // emits MutPutNode
	g.RemoveNode(2) // emits cascade: remove-links then remove-node

	muts := log.Drain()
	if len(muts) < 5 {
		t.Fatalf("fixture emitted only %d mutations", len(muts))
	}
	data := AppendMutations(nil, muts)
	got, err := DecodeMutations(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(muts) {
		t.Fatalf("decoded %d mutations, want %d", len(got), len(muts))
	}
	for i := range muts {
		w, g2 := muts[i], got[i]
		if w.Kind != g2.Kind {
			t.Fatalf("mutation %d kind: %v vs %v", i, g2.Kind, w.Kind)
		}
		if (w.Node == nil) != (g2.Node == nil) || (w.Node != nil && !w.Node.Equal(g2.Node)) {
			t.Fatalf("mutation %d node differs", i)
		}
		if (w.Link == nil) != (g2.Link == nil) || (w.Link != nil && !w.Link.Equal(g2.Link)) {
			t.Fatalf("mutation %d link differs", i)
		}
		if (w.Prev == nil) != (g2.Prev == nil) || (w.Prev != nil && !w.Prev.Equal(g2.Prev)) {
			t.Fatalf("mutation %d prev differs", i)
		}
	}
	// Replaying the decoded batch on a shallow clone of the pre-batch
	// graph must land on the same graph: the codec is replay-faithful.
	// (Rebuild the fixture; the original g already absorbed the batch.)
	replayed := buildCheckpointFixture(t)
	if err := replayed.ApplyAll(got); err != nil {
		t.Fatal(err)
	}
	if !replayed.Equal(g) {
		t.Fatal("decoded batch does not replay to the same graph")
	}

	// Corrupt inputs error out, never panic.
	for i := 0; i < len(data); i++ {
		if _, err := DecodeMutations(data[:i]); err == nil && i < len(data) {
			t.Fatalf("truncation at %d accepted", i)
		}
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		_, _ = DecodeMutations(mut)
	}
}

func TestMutationCodecEmptyBatch(t *testing.T) {
	data := AppendMutations(nil, nil)
	got, err := DecodeMutations(data)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v len=%d", err, len(got))
	}
}

// TestMaxIDsSurviveRemoveThenRecover is the retracted-id regression
// test: after removing the highest-id elements, both the JSON and the
// checkpoint codec must carry the high-water marks, so a recovered
// engine allocating fresh ids (IDSourceFor) never resurrects a
// retracted id.
func TestMaxIDsSurviveRemoveThenRecover(t *testing.T) {
	g := New()
	for i := 1; i <= 10; i++ {
		if err := g.AddNode(NewNode(NodeID(i), "user")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		if err := g.AddLink(NewLink(LinkID(i), NodeID(i), NodeID(i+1), "act")); err != nil {
			t.Fatal(err)
		}
	}
	// Retract the highest node and link ids.
	g.RemoveNode(10)
	g.RemoveLink(5)
	if g.MaxNodeID() != 10 || g.MaxLinkID() != 5 {
		t.Fatalf("high-water marks retreated: %d/%d", g.MaxNodeID(), g.MaxLinkID())
	}

	check := func(name string, rec *Graph) {
		t.Helper()
		if rec.MaxNodeID() != 10 || rec.MaxLinkID() != 5 {
			t.Fatalf("%s: recovered marks %d/%d, want 10/5", name, rec.MaxNodeID(), rec.MaxLinkID())
		}
		// Fresh ids allocated after recovery must not alias retracted ones.
		ids := IDSourceFor(rec)
		if nid := ids.NextNode(); nid != 11 {
			t.Fatalf("%s: next node id %d resurrects retracted 10", name, nid)
		}
		if lid := ids.NextLink(); lid != 6 {
			t.Fatalf("%s: next link id %d resurrects retracted 5", name, lid)
		}
	}

	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	viaJSON, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	check("json", viaJSON)

	viaCkpt, err := NewCkptReader().Apply(NewCkptWriter().AppendCheckpoint(nil, g))
	if err != nil {
		t.Fatal(err)
	}
	check("checkpoint", viaCkpt)

	// And across a full remove-then-recover-then-mutate cycle: a delta
	// checkpoint after re-adding keeps the advanced marks.
	w := NewCkptWriter()
	r := NewCkptReader()
	if _, err := r.Apply(w.AppendCheckpoint(nil, g)); err != nil {
		t.Fatal(err)
	}
	ids := IDSourceFor(g)
	nid, lid := ids.NextNode(), ids.NextLink()
	if err := g.AddNode(NewNode(nid, "user")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(NewLink(lid, nid, 1, "act")); err != nil {
		t.Fatal(err)
	}
	rec, err := r.Apply(w.AppendCheckpoint(nil, g))
	if err != nil {
		t.Fatal(err)
	}
	if rec.MaxNodeID() != nid || rec.MaxLinkID() != lid {
		t.Fatalf("delta recovery marks %d/%d, want %d/%d", rec.MaxNodeID(), rec.MaxLinkID(), nid, lid)
	}
}
