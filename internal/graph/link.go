package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Link is a directed connection or activity between two nodes: a friendship,
// a tagging action, a review, a derived match, or a membership. Like nodes,
// links carry a multi-valued type and schema-less attributes, plus an
// optional score attached by link selection.
type Link struct {
	ID     LinkID
	Src    NodeID
	Tgt    NodeID
	Types  []string
	Attrs  Attrs
	Score  float64
	Scored bool
}

// NewLink constructs a link with the given id, endpoints and types and an
// empty attribute map.
func NewLink(id LinkID, src, tgt NodeID, types ...string) *Link {
	return &Link{ID: id, Src: src, Tgt: tgt, Types: append([]string(nil), types...), Attrs: Attrs{}}
}

// End returns the node id at the given direction, implementing the paper's
// l.δd notation.
func (l *Link) End(d Direction) NodeID {
	return d.End(l.Src, l.Tgt)
}

// HasType reports whether the link carries the given type value.
func (l *Link) HasType(t string) bool {
	for _, v := range l.Types {
		if v == t {
			return true
		}
	}
	return false
}

// AddType appends a type value if not already present.
func (l *Link) AddType(t string) {
	if !l.HasType(t) {
		l.Types = append(l.Types, t)
	}
}

// TypeSuperset reports whether the link's type set contains every wanted type.
func (l *Link) TypeSuperset(want []string) bool {
	for _, w := range want {
		if !l.HasType(w) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the link.
func (l *Link) Clone() *Link {
	c := *l
	c.Types = append([]string(nil), l.Types...)
	c.Attrs = l.Attrs.Clone()
	return &c
}

// SetScore attaches a relevance score to the link.
func (l *Link) SetScore(s float64) {
	l.Score = s
	l.Scored = true
}

// Merge consolidates another link with the same id into this one,
// mirroring Node.Merge. Endpoints must already agree: links share an id only
// when they denote the same connection.
func (l *Link) Merge(other *Link) {
	if other == nil || other.ID != l.ID {
		return
	}
	for _, t := range other.Types {
		l.AddType(t)
	}
	if l.Attrs == nil {
		l.Attrs = Attrs{}
	}
	l.Attrs.Merge(other.Attrs)
	if other.Scored && (!l.Scored || other.Score > l.Score) {
		l.SetScore(other.Score)
	}
}

// Equal reports whether two links have the same id, endpoints, type set,
// attributes and score state.
func (l *Link) Equal(other *Link) bool {
	if l == nil || other == nil {
		return l == other
	}
	if l.ID != other.ID || l.Src != other.Src || l.Tgt != other.Tgt || l.Scored != other.Scored {
		return false
	}
	if l.Scored && l.Score != other.Score {
		return false
	}
	if len(l.Types) != len(other.Types) || !l.TypeSuperset(other.Types) || !other.TypeSuperset(l.Types) {
		return false
	}
	return l.Attrs.Equal(other.Attrs)
}

// Text returns the link's searchable text: types plus all attribute values.
func (l *Link) Text() string {
	ts := strings.ToLower(strings.Join(l.Types, " "))
	at := l.Attrs.Text()
	if ts == "" {
		return at
	}
	if at == "" {
		return ts
	}
	return ts + " " + at
}

// String renders the link in the paper's notation, e.g.
// l12(1,2) {type='act,tag'; tags=rockies,baseball}.
func (l *Link) String() string {
	types := append([]string(nil), l.Types...)
	sort.Strings(types)
	s := fmt.Sprintf("l%d(%d->%d){type='%s'", l.ID, l.Src, l.Tgt, strings.Join(types, ","))
	for _, k := range l.Attrs.Keys() {
		s += fmt.Sprintf("; %s=%s", k, strings.Join(l.Attrs[k], ","))
	}
	if l.Scored {
		s += fmt.Sprintf("; score=%.4g", l.Score)
	}
	return s + "}"
}
