package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// nodeJSON and linkJSON are the wire forms used by Encode/Decode. Scores are
// omitted: persisted site graphs hold raw content; scores are query-time
// artifacts.
type nodeJSON struct {
	ID    NodeID              `json:"id"`
	Types []string            `json:"types"`
	Attrs map[string][]string `json:"attrs,omitempty"`
}

type linkJSON struct {
	ID    LinkID              `json:"id"`
	Src   NodeID              `json:"src"`
	Tgt   NodeID              `json:"tgt"`
	Types []string            `json:"types"`
	Attrs map[string][]string `json:"attrs,omitempty"`
}

type graphJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	Links []linkJSON `json:"links"`
	// MaxNode and MaxLink persist the id high-water marks, so fresh-id
	// allocation after a decode still never resurrects an id that was
	// retracted before the encode. Absent in older files, in which case
	// the decoded maxima stand in.
	MaxNode NodeID `json:"max_node,omitempty"`
	MaxLink LinkID `json:"max_link,omitempty"`
}

// Encode writes the graph as JSON with deterministic element order.
func (g *Graph) Encode(w io.Writer) error {
	doc := graphJSON{
		Nodes:   make([]nodeJSON, 0, g.NumNodes()),
		Links:   make([]linkJSON, 0, g.NumLinks()),
		MaxNode: g.MaxNodeID(),
		MaxLink: g.MaxLinkID(),
	}
	for _, n := range g.Nodes() {
		doc.Nodes = append(doc.Nodes, nodeJSON{ID: n.ID, Types: n.Types, Attrs: n.Attrs})
	}
	for _, l := range g.Links() {
		doc.Links = append(doc.Links, linkJSON{ID: l.ID, Src: l.Src, Tgt: l.Tgt, Types: l.Types, Attrs: l.Attrs})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Decode reads a graph previously written by Encode. Nodes load before
// links so endpoint checks hold; the first malformed element aborts. The
// whole load runs in one bulk-mutation window — a cold load is the purest
// bulk build there is — sealed before the graph is returned.
func Decode(r io.Reader) (*Graph, error) {
	var doc graphJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	g := New()
	g.BeginBulk()
	defer g.EndBulk()
	for _, nj := range doc.Nodes {
		n := NewNode(nj.ID, nj.Types...)
		if nj.Attrs != nil {
			n.Attrs = Attrs(nj.Attrs)
		}
		if err := g.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, lj := range doc.Links {
		l := NewLink(lj.ID, lj.Src, lj.Tgt, lj.Types...)
		if lj.Attrs != nil {
			l.Attrs = Attrs(lj.Attrs)
		}
		if err := g.AddLink(l); err != nil {
			return nil, err
		}
	}
	g.noteNodeID(doc.MaxNode)
	g.noteLinkID(doc.MaxLink)
	return g, nil
}

// DOT renders the graph in Graphviz dot syntax for debugging and
// documentation. Node labels show the first type and the name attribute
// when present.
func (g *Graph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	for _, n := range g.Nodes() {
		label := ""
		if len(n.Types) > 0 {
			label = n.Types[0]
		}
		if nm := n.Attrs.Get("name"); nm != "" {
			label += ":" + nm
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, fmt.Sprintf("%d %s", n.ID, label))
	}
	for _, l := range g.Links() {
		types := append([]string(nil), l.Types...)
		sort.Strings(types)
		fmt.Fprintf(&sb, "  n%d -> n%d [label=%q];\n", l.Src, l.Tgt, strings.Join(types, ","))
	}
	sb.WriteString("}\n")
	return sb.String()
}
