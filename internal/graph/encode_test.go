package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuilder()
	u := b.Node([]string{TypeUser, "traveler"}, "name", "John")
	c := b.Node([]string{TypeItem, "city"}, "name", "Denver", "keywords", "skiing")
	b.Link(u, c, []string{TypeAct, SubtypeTag}, "tags", "rockies", "tags", "baseball")
	g := b.Graph()

	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Errorf("round trip mismatch:\n%v\n%v", g.Nodes(), got.Nodes())
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g := buildSample(t)
	var a, b bytes.Buffer
	if err := g.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Encode is nondeterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Link referencing a missing node.
	bad := `{"nodes":[{"id":1,"types":["user"]}],"links":[{"id":1,"src":1,"tgt":9,"types":["act"]}]}`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("dangling link accepted")
	}
	// Duplicate node ids.
	dup := `{"nodes":[{"id":1,"types":["user"]},{"id":1,"types":["user"]}],"links":[]}`
	if _, err := Decode(strings.NewReader(dup)); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestDOT(t *testing.T) {
	g := buildSample(t)
	dot := g.DOT("sample")
	for _, want := range []string{"digraph", "n1", "n2", "n1 -> n2", "John"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestStats(t *testing.T) {
	g := buildSample(t)
	s := g.ComputeStats()
	if s.Nodes != 2 || s.Links != 1 || s.Components != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.NodesByType[TypeUser] != 1 || s.NodesByType[TypeItem] != 1 {
		t.Errorf("NodesByType = %v", s.NodesByType)
	}
	if s.LinksByType[TypeAct] != 1 {
		t.Errorf("LinksByType = %v", s.LinksByType)
	}
	if s.MaxOutDegree != 1 || s.MaxInDegree != 1 || s.IsolatedNodes != 0 {
		t.Errorf("degrees = %+v", s)
	}
	if !strings.Contains(s.String(), "nodes=2") {
		t.Errorf("stats String = %q", s.String())
	}
}

func TestTypeCounters(t *testing.T) {
	g := buildSample(t)
	if g.CountNodes(TypeUser) != 1 || g.CountNodes(TypeItem) != 1 || g.CountNodes(TypeTopic) != 0 {
		t.Error("CountNodes wrong")
	}
	if g.CountLinks(TypeAct) != 1 || g.CountLinks(TypeConnect) != 0 {
		t.Error("CountLinks wrong")
	}
	if ns := g.NodesOfType(TypeUser); len(ns) != 1 || ns[0].ID != 1 {
		t.Errorf("NodesOfType = %v", ns)
	}
	if ls := g.LinksOfType(SubtypeTag); len(ls) != 1 {
		t.Errorf("LinksOfType = %v", ls)
	}
	h := g.DegreeHistogram()
	if h[1] != 2 {
		t.Errorf("DegreeHistogram = %v", h)
	}
}

// TestEncodePreservesHighWaterMarks: the wire format carries the id
// high-water marks, so fresh-id allocation after a decode cannot
// resurrect an id retracted before the encode.
func TestEncodePreservesHighWaterMarks(t *testing.T) {
	g := buildSample(t)
	g.RemoveNode(2) // burns node id 2 and link id 12
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxNodeID() != 2 || d.MaxLinkID() != 12 {
		t.Fatalf("decoded marks = %d,%d; want 2,12", d.MaxNodeID(), d.MaxLinkID())
	}
	if n := IDSourceFor(d).NextNode(); n != 3 {
		t.Errorf("NextNode after decode = %d, want 3", n)
	}
}
