package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Common errors returned by graph mutation methods.
var (
	ErrDuplicateNode  = errors.New("graph: node id already present")
	ErrDuplicateLink  = errors.New("graph: link id already present")
	ErrMissingNode    = errors.New("graph: node id not present")
	ErrMissingEnd     = errors.New("graph: link endpoint not present")
	ErrNilElement     = errors.New("graph: nil node or link")
	ErrEndpointChange = errors.New("graph: consolidated link has different endpoints")
)

// Graph is an instance of a social content site: a set of id-addressed nodes
// and links with adjacency indexes. A Graph may be a "null graph" in the
// paper's sense — nodes with no links — which node selection produces.
//
// Graphs are not safe for concurrent mutation; concurrent reads are safe.
type Graph struct {
	nodes map[NodeID]*Node
	links map[LinkID]*Link
	out   map[NodeID][]LinkID
	in    map[NodeID][]LinkID
	// recorder, when set via SetRecorder, observes every successful write
	// operation as a Mutation. Clones (Clone, ShallowClone, induced
	// subgraphs) start with no recorder.
	recorder func(Mutation)
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		links: make(map[LinkID]*Link),
		out:   make(map[NodeID][]LinkID),
		in:    make(map[NodeID][]LinkID),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Link returns the link with the given id, or nil.
func (g *Graph) Link(id LinkID) *Link { return g.links[id] }

// HasNode reports whether the node id is present.
func (g *Graph) HasNode(id NodeID) bool { _, ok := g.nodes[id]; return ok }

// HasLink reports whether the link id is present.
func (g *Graph) HasLink(id LinkID) bool { _, ok := g.links[id]; return ok }

// AddNode inserts a node. It fails on nil input or duplicate id.
func (g *Graph) AddNode(n *Node) error {
	if n == nil {
		return ErrNilElement
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateNode, n.ID)
	}
	g.nodes[n.ID] = n
	g.emitNode(MutAddNode, n)
	return nil
}

// PutNode inserts the node, consolidating (merging) with any existing node
// of the same id. This is the consolidation rule of Definition 3.
func (g *Graph) PutNode(n *Node) {
	if n == nil {
		return
	}
	if ex, ok := g.nodes[n.ID]; ok {
		ex.Merge(n)
		g.emitNode(MutPutNode, ex)
		return
	}
	g.nodes[n.ID] = n
	g.emitNode(MutAddNode, n)
}

// AddLink inserts a link. Both endpoints must already be present; this keeps
// every Graph a well-formed subgraph (links induce their endpoints).
func (g *Graph) AddLink(l *Link) error {
	if l == nil {
		return ErrNilElement
	}
	if _, ok := g.links[l.ID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateLink, l.ID)
	}
	if !g.HasNode(l.Src) {
		return fmt.Errorf("%w: src %d of link %d", ErrMissingEnd, l.Src, l.ID)
	}
	if !g.HasNode(l.Tgt) {
		return fmt.Errorf("%w: tgt %d of link %d", ErrMissingEnd, l.Tgt, l.ID)
	}
	g.links[l.ID] = l
	g.out[l.Src] = append(g.out[l.Src], l.ID)
	g.in[l.Tgt] = append(g.in[l.Tgt], l.ID)
	g.emitLink(MutAddLink, l)
	return nil
}

// PutLink inserts the link, consolidating with any existing link of the same
// id. Consolidation with different endpoints is an error. Missing endpoint
// nodes are an error, as with AddLink.
func (g *Graph) PutLink(l *Link) error {
	if l == nil {
		return ErrNilElement
	}
	if ex, ok := g.links[l.ID]; ok {
		if ex.Src != l.Src || ex.Tgt != l.Tgt {
			return fmt.Errorf("%w: link %d", ErrEndpointChange, l.ID)
		}
		var prev *Link
		if g.recorder != nil {
			prev = ex.Clone()
		}
		ex.Merge(l)
		if g.recorder != nil {
			g.recorder(Mutation{Kind: MutPutLink, Link: ex.Clone(), Prev: prev})
		}
		return nil
	}
	return g.AddLink(l)
}

// RemoveLink deletes a link (no-op when absent). Endpoint nodes remain.
func (g *Graph) RemoveLink(id LinkID) {
	l, ok := g.links[id]
	if !ok {
		return
	}
	delete(g.links, id)
	g.out[l.Src] = removeLinkID(g.out[l.Src], id)
	g.in[l.Tgt] = removeLinkID(g.in[l.Tgt], id)
	g.emitLink(MutRemoveLink, l)
}

// RemoveNode deletes a node and every link incident on it.
func (g *Graph) RemoveNode(id NodeID) {
	n, ok := g.nodes[id]
	if !ok {
		return
	}
	for _, lid := range append(append([]LinkID(nil), g.out[id]...), g.in[id]...) {
		g.RemoveLink(lid)
	}
	delete(g.nodes, id)
	delete(g.out, id)
	delete(g.in, id)
	g.emitNode(MutRemoveNode, n)
}

func removeLinkID(ids []LinkID, id LinkID) []LinkID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// NodeIDs returns all node ids in ascending order.
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// LinkIDs returns all link ids in ascending order.
func (g *Graph) LinkIDs() []LinkID {
	ids := make([]LinkID, 0, len(g.links))
	for id := range g.links {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Nodes returns all nodes ordered by ascending id.
func (g *Graph) Nodes() []*Node {
	ids := g.NodeIDs()
	ns := make([]*Node, len(ids))
	for i, id := range ids {
		ns[i] = g.nodes[id]
	}
	return ns
}

// Links returns all links ordered by ascending id.
func (g *Graph) Links() []*Link {
	ids := g.LinkIDs()
	ls := make([]*Link, len(ids))
	for i, id := range ids {
		ls[i] = g.links[id]
	}
	return ls
}

// Out returns the links whose source is the given node, ordered by id.
func (g *Graph) Out(id NodeID) []*Link {
	return g.linkSlice(g.out[id])
}

// In returns the links whose target is the given node, ordered by id.
func (g *Graph) In(id NodeID) []*Link {
	return g.linkSlice(g.in[id])
}

// Incident returns all links touching the node (out then in), ordered by id
// within each direction.
func (g *Graph) Incident(id NodeID) []*Link {
	return append(g.Out(id), g.In(id)...)
}

// OutDegree returns the number of outgoing links of the node.
func (g *Graph) OutDegree(id NodeID) int { return len(g.out[id]) }

// InDegree returns the number of incoming links of the node.
func (g *Graph) InDegree(id NodeID) int { return len(g.in[id]) }

func (g *Graph) linkSlice(ids []LinkID) []*Link {
	sorted := append([]LinkID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ls := make([]*Link, len(sorted))
	for i, id := range sorted {
		ls[i] = g.links[id]
	}
	return ls
}

// Neighbors returns the distinct node ids adjacent to the node (either
// direction), in ascending order.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	seen := make(map[NodeID]struct{})
	for _, lid := range g.out[id] {
		seen[g.links[lid].Tgt] = struct{}{}
	}
	for _, lid := range g.in[id] {
		seen[g.links[lid].Src] = struct{}{}
	}
	delete(seen, id)
	ids := make([]NodeID, 0, len(seen))
	for nid := range seen {
		ids = append(ids, nid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Clone returns a deep copy of the graph: nodes, links and adjacency.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, n := range g.nodes {
		c.nodes[n.ID] = n.Clone()
	}
	for _, l := range g.links {
		lc := l.Clone()
		c.links[lc.ID] = lc
		c.out[lc.Src] = append(c.out[lc.Src], lc.ID)
		c.in[lc.Tgt] = append(c.in[lc.Tgt], lc.ID)
	}
	return c
}

// ShallowClone returns a copy of the graph structure that shares node and
// link values with the original. Operators that only filter (and never
// mutate elements) use it to avoid deep copies.
func (g *Graph) ShallowClone() *Graph {
	c := New()
	for id, n := range g.nodes {
		c.nodes[id] = n
	}
	for id, l := range g.links {
		c.links[id] = l
		c.out[l.Src] = append(c.out[l.Src], id)
		c.in[l.Tgt] = append(c.in[l.Tgt], id)
	}
	return c
}

// InducedByNodes returns the subgraph of g induced by the given node set:
// those nodes plus every link whose both endpoints are in the set. Node and
// link values are shared with g (callers clone before mutating).
func (g *Graph) InducedByNodes(ids map[NodeID]struct{}) *Graph {
	sub := New()
	for id := range ids {
		if n := g.nodes[id]; n != nil {
			sub.nodes[id] = n
		}
	}
	for lid, l := range g.links {
		if sub.HasNode(l.Src) && sub.HasNode(l.Tgt) {
			sub.links[lid] = l
			sub.out[l.Src] = append(sub.out[l.Src], lid)
			sub.in[l.Tgt] = append(sub.in[l.Tgt], lid)
		}
	}
	return sub
}

// InducedByLinks returns the subgraph of g induced by the given link set:
// those links plus precisely the nodes they are incident on (Definition 2's
// "subgraph induced by those links"). Values are shared with g.
func (g *Graph) InducedByLinks(ids map[LinkID]struct{}) *Graph {
	sub := New()
	for lid := range ids {
		l := g.links[lid]
		if l == nil {
			continue
		}
		if !sub.HasNode(l.Src) {
			sub.nodes[l.Src] = g.nodes[l.Src]
		}
		if !sub.HasNode(l.Tgt) {
			sub.nodes[l.Tgt] = g.nodes[l.Tgt]
		}
		sub.links[lid] = l
		sub.out[l.Src] = append(sub.out[l.Src], lid)
		sub.in[l.Tgt] = append(sub.in[l.Tgt], lid)
	}
	return sub
}

// Equal reports whether two graphs contain equal node and link sets.
func (g *Graph) Equal(other *Graph) bool {
	if g.NumNodes() != other.NumNodes() || g.NumLinks() != other.NumLinks() {
		return false
	}
	for id, n := range g.nodes {
		if !n.Equal(other.nodes[id]) {
			return false
		}
	}
	for id, l := range g.links {
		if !l.Equal(other.links[id]) {
			return false
		}
	}
	return true
}

// MaxNodeID returns the largest node id present (0 when empty).
func (g *Graph) MaxNodeID() NodeID {
	var max NodeID
	for id := range g.nodes {
		if id > max {
			max = id
		}
	}
	return max
}

// MaxLinkID returns the largest link id present (0 when empty).
func (g *Graph) MaxLinkID() LinkID {
	var max LinkID
	for id := range g.links {
		if id > max {
			max = id
		}
	}
	return max
}

// Validate checks internal consistency: every link's endpoints exist and the
// adjacency indexes agree with the link set. It returns the first violation.
func (g *Graph) Validate() error {
	for id, l := range g.links {
		if l.ID != id {
			return fmt.Errorf("graph: link stored under id %d has id %d", id, l.ID)
		}
		if !g.HasNode(l.Src) || !g.HasNode(l.Tgt) {
			return fmt.Errorf("%w: link %d (%d->%d)", ErrMissingEnd, id, l.Src, l.Tgt)
		}
	}
	outCount, inCount := 0, 0
	for src, lids := range g.out {
		for _, lid := range lids {
			l, ok := g.links[lid]
			if !ok || l.Src != src {
				return fmt.Errorf("graph: out index for node %d lists stale link %d", src, lid)
			}
			outCount++
		}
	}
	for tgt, lids := range g.in {
		for _, lid := range lids {
			l, ok := g.links[lid]
			if !ok || l.Tgt != tgt {
				return fmt.Errorf("graph: in index for node %d lists stale link %d", tgt, lid)
			}
			inCount++
		}
	}
	if outCount != len(g.links) || inCount != len(g.links) {
		return fmt.Errorf("graph: adjacency indexes cover %d/%d links (out/in %d/%d)",
			outCount, len(g.links), outCount, inCount)
	}
	for id, n := range g.nodes {
		if n.ID != id {
			return fmt.Errorf("graph: node stored under id %d has id %d", id, n.ID)
		}
	}
	return nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes=%d links=%d}", len(g.nodes), len(g.links))
}
