package graph

import (
	"errors"
	"fmt"
	"sort"

	"socialscope/internal/persist"
)

// Common errors returned by graph mutation methods.
var (
	ErrDuplicateNode  = errors.New("graph: node id already present")
	ErrDuplicateLink  = errors.New("graph: link id already present")
	ErrMissingNode    = errors.New("graph: node id not present")
	ErrMissingEnd     = errors.New("graph: link endpoint not present")
	ErrNilElement     = errors.New("graph: nil node or link")
	ErrEndpointChange = errors.New("graph: consolidated link has different endpoints")
)

// Graph is an instance of a social content site: a set of id-addressed nodes
// and links with adjacency indexes. A Graph may be a "null graph" in the
// paper's sense — nodes with no links — which node selection produces.
//
// Storage is persistent (structurally shared): the node, link and adjacency
// maps are copy-on-write tries, and adjacency lists are immutable slices
// ordered by ascending link id. Every write operation rebinds the Graph's
// own map headers and never modifies a trie node or slice another Graph can
// reach, which makes ShallowClone an O(1) snapshot: a clone and its origin
// share all storage, and either side can keep mutating without the other
// observing a thing — the RCU discipline the live engine's Apply/Search
// concurrency is built on.
//
// Graphs are not safe for concurrent mutation; concurrent reads — including
// reads of an earlier ShallowClone while a successor mutates — are safe.
type Graph struct {
	nodes persist.Map[NodeID, *Node]
	links persist.Map[LinkID, *Link]
	out   persist.Map[NodeID, []LinkID]
	in    persist.Map[NodeID, []LinkID]
	// maxNode and maxLink are monotonic high-water marks over every id the
	// graph has ever held. They survive clones and removals, so IDSource
	// allocation never reuses a retracted id (which would alias unrelated
	// elements in incremental index deltas and changelog replays).
	maxNode NodeID
	maxLink LinkID
	// recorder, when set via SetRecorder, observes every successful write
	// operation as a Mutation. Clones (Clone, ShallowClone, induced
	// subgraphs) start with no recorder.
	recorder func(Mutation)
	// bulk, when non-nil, is the ownership token of an open bulk-mutation
	// window (BeginBulk): map writes route through the persist transient
	// path, mutating trie nodes this window created in place instead of
	// path-copying per write. Snapshot safety is preserved — nodes shared
	// with any earlier snapshot are copied on first touch — and taking a
	// snapshot (ShallowClone, Clone) seals the window first.
	bulk *persist.Edit
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: persist.NewIntMap[NodeID, *Node](),
		links: persist.NewIntMap[LinkID, *Link](),
		out:   persist.NewIntMap[NodeID, []LinkID](),
		in:    persist.NewIntMap[NodeID, []LinkID](),
	}
}

// BeginBulk opens a bulk-mutation window: until the window closes, write
// operations may mutate freshly created trie nodes in place (persist
// transients) instead of copy-on-writing one path per write, cutting the
// allocation cost of bulk construction — cold loads, Clone/Extract,
// induced subgraphs, large ApplyAll batches — by an order of magnitude.
//
// Correctness is unchanged: storage shared with any Graph that existed
// before the window opened is still copied before the first write, so
// earlier snapshots never observe a thing. The graph itself remains
// readable mid-window. The contract is the transient one: a bulk window
// is single-goroutine, and the graph must not be shared with concurrent
// readers until the window closes (EndBulk, or implicitly by taking a
// ShallowClone/Clone snapshot, which seals first). Idempotent: an
// already-open window is kept.
func (g *Graph) BeginBulk() {
	if g.bulk == nil {
		g.bulk = persist.NewEdit()
	}
}

// EndBulk closes the bulk-mutation window. After it returns no write can
// mutate previously written storage in place, so the graph may be
// published to concurrent readers under the usual snapshot discipline.
//
// On a graph with no open window this is a pure read (no field write):
// concurrent readers may freely take snapshots of a published — hence
// sealed — graph, where an unconditional nil-store would be a data race.
// An open window already requires single-goroutine ownership, so the
// closing store is race-free by contract.
func (g *Graph) EndBulk() {
	if g.bulk != nil {
		g.bulk = nil
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.nodes.Len() }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return g.links.Len() }

// Node returns the node with the given id, or nil. The pointer is the
// node stored in the published snapshot, not a copy.
//
//ss:immutable — Clone before mutating.
func (g *Graph) Node(id NodeID) *Node { return g.nodes.At(id) }

// Link returns the link with the given id, or nil. The pointer is the
// link stored in the published snapshot, not a copy.
//
//ss:immutable — Clone before mutating.
func (g *Graph) Link(id LinkID) *Link { return g.links.At(id) }

// HasNode reports whether the node id is present.
func (g *Graph) HasNode(id NodeID) bool { return g.nodes.Has(id) }

// HasLink reports whether the link id is present.
func (g *Graph) HasLink(id LinkID) bool { return g.links.Has(id) }

// noteNodeID and noteLinkID advance the high-water marks.
func (g *Graph) noteNodeID(id NodeID) {
	if id > g.maxNode {
		g.maxNode = id
	}
}

func (g *Graph) noteLinkID(id LinkID) {
	if id > g.maxLink {
		g.maxLink = id
	}
}

// AddNode inserts a node. It fails on nil input or duplicate id.
func (g *Graph) AddNode(n *Node) error {
	if n == nil {
		return ErrNilElement
	}
	if g.nodes.Has(n.ID) {
		return fmt.Errorf("%w: %d", ErrDuplicateNode, n.ID)
	}
	g.nodes = g.nodes.SetWith(g.bulk, n.ID, n)
	g.noteNodeID(n.ID)
	g.emitNode(MutAddNode, n)
	return nil
}

// PutNode inserts the node, consolidating (merging) with any existing node
// of the same id. This is the consolidation rule of Definition 3. The
// resident node value is never modified: the merge happens on a clone
// that is swapped in, so snapshots sharing the old value keep it intact.
func (g *Graph) PutNode(n *Node) {
	if n == nil {
		return
	}
	if ex, ok := g.nodes.Get(n.ID); ok {
		merged := ex.Clone()
		merged.Merge(n)
		g.nodes = g.nodes.SetWith(g.bulk, n.ID, merged)
		g.emitNode(MutPutNode, merged)
		return
	}
	g.nodes = g.nodes.SetWith(g.bulk, n.ID, n)
	g.noteNodeID(n.ID)
	g.emitNode(MutAddNode, n)
}

// AddLink inserts a link. Both endpoints must already be present; this keeps
// every Graph a well-formed subgraph (links induce their endpoints).
func (g *Graph) AddLink(l *Link) error {
	if l == nil {
		return ErrNilElement
	}
	if g.links.Has(l.ID) {
		return fmt.Errorf("%w: %d", ErrDuplicateLink, l.ID)
	}
	if !g.HasNode(l.Src) {
		return fmt.Errorf("%w: src %d of link %d", ErrMissingEnd, l.Src, l.ID)
	}
	if !g.HasNode(l.Tgt) {
		return fmt.Errorf("%w: tgt %d of link %d", ErrMissingEnd, l.Tgt, l.ID)
	}
	g.links = g.links.SetWith(g.bulk, l.ID, l)
	g.out = g.out.SetWith(g.bulk, l.Src, persist.InsertSorted(g.out.At(l.Src), l.ID))
	g.in = g.in.SetWith(g.bulk, l.Tgt, persist.InsertSorted(g.in.At(l.Tgt), l.ID))
	g.noteLinkID(l.ID)
	g.emitLink(MutAddLink, l)
	return nil
}

// PutLink inserts the link, consolidating with any existing link of the same
// id. Consolidation with different endpoints is an error. Missing endpoint
// nodes are an error, as with AddLink. Like PutNode, the resident link
// value is never modified — the merge is clone-and-swap — so snapshots
// keep their view.
func (g *Graph) PutLink(l *Link) error {
	if l == nil {
		return ErrNilElement
	}
	if ex, ok := g.links.Get(l.ID); ok {
		if ex.Src != l.Src || ex.Tgt != l.Tgt {
			return fmt.Errorf("%w: link %d", ErrEndpointChange, l.ID)
		}
		merged := ex.Clone()
		merged.Merge(l)
		g.links = g.links.SetWith(g.bulk, l.ID, merged)
		if g.recorder != nil {
			g.recorder(Mutation{Kind: MutPutLink, Link: merged.Clone(), Prev: ex.Clone()})
		}
		return nil
	}
	return g.AddLink(l)
}

// RemoveLink deletes a link (no-op when absent). Endpoint nodes remain.
// The high-water id marks do not retreat: the retracted id stays burned.
func (g *Graph) RemoveLink(id LinkID) {
	l, ok := g.links.Get(id)
	if !ok {
		return
	}
	g.links = g.links.DeleteWith(g.bulk, id)
	g.setAdjacency(&g.out, l.Src, persist.RemoveSorted(g.out.At(l.Src), id))
	g.setAdjacency(&g.in, l.Tgt, persist.RemoveSorted(g.in.At(l.Tgt), id))
	g.emitLink(MutRemoveLink, l)
}

// setAdjacency rebinds one adjacency entry, dropping the key once its list
// drains so empty slices never accumulate.
func (g *Graph) setAdjacency(m *persist.Map[NodeID, []LinkID], id NodeID, ids []LinkID) {
	if len(ids) == 0 {
		*m = m.DeleteWith(g.bulk, id)
		return
	}
	*m = m.SetWith(g.bulk, id, ids)
}

// RemoveNode deletes a node and every link incident on it.
func (g *Graph) RemoveNode(id NodeID) {
	n, ok := g.nodes.Get(id)
	if !ok {
		return
	}
	for _, lid := range append(append([]LinkID(nil), g.out.At(id)...), g.in.At(id)...) {
		g.RemoveLink(lid)
	}
	g.nodes = g.nodes.DeleteWith(g.bulk, id)
	g.out = g.out.DeleteWith(g.bulk, id)
	g.in = g.in.DeleteWith(g.bulk, id)
	g.emitNode(MutRemoveNode, n)
}

// NodeIDs returns all node ids in ascending order.
func (g *Graph) NodeIDs() []NodeID {
	ids := g.nodes.Keys()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// LinkIDs returns all link ids in ascending order.
func (g *Graph) LinkIDs() []LinkID {
	ids := g.links.Keys()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Nodes returns all nodes ordered by ascending id. The slice is fresh
// but the elements are the snapshot's own nodes.
//
//ss:immutable — Clone elements before mutating them.
func (g *Graph) Nodes() []*Node {
	ns := make([]*Node, 0, g.nodes.Len())
	g.nodes.Range(func(_ NodeID, n *Node) bool {
		ns = append(ns, n)
		return true
	})
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	return ns
}

// Links returns all links ordered by ascending id. The slice is fresh
// but the elements are the snapshot's own links.
//
//ss:immutable — Clone elements before mutating them.
func (g *Graph) Links() []*Link {
	ls := make([]*Link, 0, g.links.Len())
	g.links.Range(func(_ LinkID, l *Link) bool {
		ls = append(ls, l)
		return true
	})
	sort.Slice(ls, func(i, j int) bool { return ls[i].ID < ls[j].ID })
	return ls
}

// Out returns the links whose source is the given node, ordered by id.
// The elements alias the published snapshot.
//
//ss:immutable — Clone elements before mutating them.
func (g *Graph) Out(id NodeID) []*Link {
	return g.linkSlice(g.out.At(id))
}

// In returns the links whose target is the given node, ordered by id.
// The elements alias the published snapshot.
//
//ss:immutable — Clone elements before mutating them.
func (g *Graph) In(id NodeID) []*Link {
	return g.linkSlice(g.in.At(id))
}

// Incident returns all links touching the node (out then in), ordered by id
// within each direction. The elements alias the published snapshot.
//
//ss:immutable — Clone elements before mutating them.
func (g *Graph) Incident(id NodeID) []*Link {
	return append(g.Out(id), g.In(id)...)
}

// OutDegree returns the number of outgoing links of the node.
func (g *Graph) OutDegree(id NodeID) int { return len(g.out.At(id)) }

// InDegree returns the number of incoming links of the node.
func (g *Graph) InDegree(id NodeID) int { return len(g.in.At(id)) }

// linkSlice resolves stored adjacency ids — already sorted ascending — to
// link values.
func (g *Graph) linkSlice(ids []LinkID) []*Link {
	ls := make([]*Link, len(ids))
	for i, id := range ids {
		ls[i] = g.links.At(id)
	}
	return ls
}

// Neighbors returns the distinct node ids adjacent to the node (either
// direction), in ascending order.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	seen := make(map[NodeID]struct{})
	for _, lid := range g.out.At(id) {
		seen[g.links.At(lid).Tgt] = struct{}{}
	}
	for _, lid := range g.in.At(id) {
		seen[g.links.At(lid).Src] = struct{}{}
	}
	delete(seen, id)
	ids := make([]NodeID, 0, len(seen))
	for nid := range seen {
		ids = append(ids, nid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Clone returns a deep copy of the graph: node and link values are cloned;
// the adjacency indexes — pure structure — stay structurally shared, which
// is safe because adjacency slices are never mutated in place. The value
// rewrite runs in a bulk window: the clone's node and link tries are
// rebuilt with transient in-place writes (one claim per trie node instead
// of one path copy per element), sealed before the clone is returned.
func (g *Graph) Clone() *Graph {
	c := g.ShallowClone()
	c.BeginBulk()
	g.nodes.Range(func(id NodeID, n *Node) bool {
		c.nodes = c.nodes.SetWith(c.bulk, id, n.Clone())
		return true
	})
	g.links.Range(func(id LinkID, l *Link) bool {
		c.links = c.links.SetWith(c.bulk, id, l.Clone())
		return true
	})
	c.EndBulk()
	return c
}

// ShallowClone returns a snapshot of the graph that shares all storage —
// node and link values, and the persistent maps holding them — with the
// original. O(1): it copies only the Graph header. Either side may keep
// mutating; copy-on-write guarantees the other never observes it.
// Operators that only filter (and never mutate elements) use it to avoid
// deep copies, and Engine.Apply builds its per-batch snapshots on it.
//
// Taking a snapshot seals any open bulk window on the receiver first:
// once two Graphs share storage, neither may mutate it in place.
func (g *Graph) ShallowClone() *Graph {
	g.EndBulk()
	return &Graph{
		nodes:   g.nodes,
		links:   g.links,
		out:     g.out,
		in:      g.in,
		maxNode: g.maxNode,
		maxLink: g.maxLink,
	}
}

// InducedByNodes returns the subgraph of g induced by the given node set:
// those nodes plus every link whose both endpoints are in the set. Node and
// link values are shared with g (callers clone before mutating).
func (g *Graph) InducedByNodes(ids map[NodeID]struct{}) *Graph {
	sub := New()
	sub.BeginBulk()
	for id := range ids {
		if n, ok := g.nodes.Get(id); ok {
			sub.nodes = sub.nodes.SetWith(sub.bulk, id, n)
			sub.noteNodeID(id)
		}
	}
	var kept []*Link
	g.links.Range(func(_ LinkID, l *Link) bool {
		if sub.HasNode(l.Src) && sub.HasNode(l.Tgt) {
			kept = append(kept, l)
		}
		return true
	})
	sub.addInducedLinks(kept)
	sub.EndBulk()
	return sub
}

// InducedByLinks returns the subgraph of g induced by the given link set:
// those links plus precisely the nodes they are incident on (Definition 2's
// "subgraph induced by those links"). Values are shared with g.
func (g *Graph) InducedByLinks(ids map[LinkID]struct{}) *Graph {
	sub := New()
	sub.BeginBulk()
	var kept []*Link
	for lid := range ids {
		l, ok := g.links.Get(lid)
		if !ok {
			continue
		}
		if !sub.HasNode(l.Src) {
			sub.nodes = sub.nodes.SetWith(sub.bulk, l.Src, g.nodes.At(l.Src))
			sub.noteNodeID(l.Src)
		}
		if !sub.HasNode(l.Tgt) {
			sub.nodes = sub.nodes.SetWith(sub.bulk, l.Tgt, g.nodes.At(l.Tgt))
			sub.noteNodeID(l.Tgt)
		}
		kept = append(kept, l)
	}
	sub.addInducedLinks(kept)
	sub.EndBulk()
	return sub
}

// addInducedLinks installs pre-screened links (endpoints already present)
// in bulk: links are sorted by id once and adjacency lists assembled in a
// single pass, so construction is O(L log L) instead of per-insert slice
// copying, and the resulting adjacency order is the same deterministic
// ascending-id order every Graph maintains.
func (g *Graph) addInducedLinks(ls []*Link) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].ID < ls[j].ID })
	out := make(map[NodeID][]LinkID)
	in := make(map[NodeID][]LinkID)
	for _, l := range ls {
		g.links = g.links.SetWith(g.bulk, l.ID, l)
		out[l.Src] = append(out[l.Src], l.ID)
		in[l.Tgt] = append(in[l.Tgt], l.ID)
		g.noteLinkID(l.ID)
	}
	for id, ids := range out {
		g.out = g.out.SetWith(g.bulk, id, ids)
	}
	for id, ids := range in {
		g.in = g.in.SetWith(g.bulk, id, ids)
	}
}

// Equal reports whether two graphs contain equal node and link sets.
func (g *Graph) Equal(other *Graph) bool {
	if g.NumNodes() != other.NumNodes() || g.NumLinks() != other.NumLinks() {
		return false
	}
	eq := true
	g.nodes.Range(func(id NodeID, n *Node) bool {
		eq = n.Equal(other.nodes.At(id))
		return eq
	})
	if !eq {
		return false
	}
	g.links.Range(func(id LinkID, l *Link) bool {
		eq = l.Equal(other.links.At(id))
		return eq
	})
	return eq
}

// MaxNodeID returns the node-id high-water mark: the largest node id the
// graph has ever held, O(1). It is monotonic — removals do not lower it —
// and survives ShallowClone/Clone, so ids allocated past it (IDSourceFor)
// never collide with a live id and never resurrect a retracted one.
func (g *Graph) MaxNodeID() NodeID { return g.maxNode }

// MaxLinkID returns the link-id high-water mark (see MaxNodeID).
func (g *Graph) MaxLinkID() LinkID { return g.maxLink }

// Validate checks internal consistency: every link's endpoints exist, the
// adjacency indexes agree with the link set and keep ascending id order,
// and the id high-water marks bound every present id. It returns the first
// violation.
func (g *Graph) Validate() error {
	var err error
	g.links.Range(func(id LinkID, l *Link) bool {
		switch {
		case l.ID != id:
			err = fmt.Errorf("graph: link stored under id %d has id %d", id, l.ID)
		case !g.HasNode(l.Src) || !g.HasNode(l.Tgt):
			err = fmt.Errorf("%w: link %d (%d->%d)", ErrMissingEnd, id, l.Src, l.Tgt)
		case id > g.maxLink:
			err = fmt.Errorf("graph: link %d above high-water mark %d", id, g.maxLink)
		}
		return err == nil
	})
	if err != nil {
		return err
	}
	outCount, inCount := 0, 0
	g.out.Range(func(src NodeID, lids []LinkID) bool {
		for i, lid := range lids {
			l, ok := g.links.Get(lid)
			if !ok || l.Src != src {
				err = fmt.Errorf("graph: out index for node %d lists stale link %d", src, lid)
				return false
			}
			if i > 0 && lids[i-1] >= lid {
				err = fmt.Errorf("graph: out index for node %d not in ascending order", src)
				return false
			}
			outCount++
		}
		return true
	})
	if err != nil {
		return err
	}
	g.in.Range(func(tgt NodeID, lids []LinkID) bool {
		for i, lid := range lids {
			l, ok := g.links.Get(lid)
			if !ok || l.Tgt != tgt {
				err = fmt.Errorf("graph: in index for node %d lists stale link %d", tgt, lid)
				return false
			}
			if i > 0 && lids[i-1] >= lid {
				err = fmt.Errorf("graph: in index for node %d not in ascending order", tgt)
				return false
			}
			inCount++
		}
		return true
	})
	if err != nil {
		return err
	}
	if outCount != g.links.Len() || inCount != g.links.Len() {
		return fmt.Errorf("graph: adjacency indexes cover %d/%d links (out/in %d/%d)",
			outCount, g.links.Len(), outCount, inCount)
	}
	g.nodes.Range(func(id NodeID, n *Node) bool {
		switch {
		case n.ID != id:
			err = fmt.Errorf("graph: node stored under id %d has id %d", id, n.ID)
		case id > g.maxNode:
			err = fmt.Errorf("graph: node %d above high-water mark %d", id, g.maxNode)
		}
		return err == nil
	})
	return err
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes=%d links=%d}", g.NumNodes(), g.NumLinks())
}
