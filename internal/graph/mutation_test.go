package graph

import "testing"

// buildSmall returns a recorded graph: two users, one item, a friendship
// and a tagging action.
func buildSmall(t *testing.T) (*Graph, *Changelog) {
	t.Helper()
	g := New()
	log := RecordInto(g)
	for id := NodeID(1); id <= 2; id++ {
		if err := g.AddNode(NewNode(id, TypeUser)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddNode(NewNode(3, TypeItem)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(NewLink(1, 1, 2, TypeConnect, SubtypeFriend)); err != nil {
		t.Fatal(err)
	}
	tagLink := NewLink(2, 1, 3, TypeAct, SubtypeTag)
	tagLink.Attrs = NewAttrs("tags", "museum")
	if err := g.AddLink(tagLink); err != nil {
		t.Fatal(err)
	}
	return g, log
}

func TestRecorderEmitsWrites(t *testing.T) {
	g, log := buildSmall(t)
	muts := log.Drain()
	if len(muts) != 5 {
		t.Fatalf("recorded %d mutations, want 5", len(muts))
	}
	wantKinds := []MutationKind{MutAddNode, MutAddNode, MutAddNode, MutAddLink, MutAddLink}
	for i, m := range muts {
		if m.Kind != wantKinds[i] {
			t.Errorf("mutation %d: kind %v, want %v", i, m.Kind, wantKinds[i])
		}
	}
	// Snapshots are clones: editing the live element must not alter history.
	g.Link(2).Attrs.Add("tags", "historic")
	if got := muts[4].Link.Attrs.All("tags"); len(got) != 1 || got[0] != "museum" {
		t.Errorf("changelog snapshot mutated through live link: %v", got)
	}
	if log.Len() != 0 {
		t.Errorf("drain did not reset the log: %d left", log.Len())
	}
}

func TestRecorderCascadesNodeRemoval(t *testing.T) {
	g, log := buildSmall(t)
	log.Drain()
	g.RemoveNode(1) // incident: links 1 and 2
	muts := log.Drain()
	if len(muts) != 3 {
		t.Fatalf("recorded %d mutations, want 3 (2 link removals + node removal)", len(muts))
	}
	if muts[0].Kind != MutRemoveLink || muts[1].Kind != MutRemoveLink {
		t.Errorf("cascade did not emit link removals first: %v %v", muts[0].Kind, muts[1].Kind)
	}
	last := muts[2]
	if last.Kind != MutRemoveNode || last.Node.ID != 1 {
		t.Errorf("final mutation: %v node %v, want remove-node 1", last.Kind, last.Node)
	}
	// Removed-link snapshots carry the full link, tags included.
	for _, m := range muts[:2] {
		if m.Link.ID == 2 {
			if got := m.Link.Attrs.All("tags"); len(got) != 1 || got[0] != "museum" {
				t.Errorf("removed tag link lost its attrs: %v", got)
			}
		}
	}
}

func TestApplyReplaysChangelog(t *testing.T) {
	g, log := buildSmall(t)
	g.PutNode(NewNode(2, TypeUser, TypeGroup)) // consolidation
	g.RemoveLink(1)
	replica := New()
	if err := replica.ApplyAll(log.Drain()); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(replica) {
		t.Fatalf("replay diverged:\n got %v\nwant %v", replica, g)
	}
}

func TestApplyIsCopyOnWrite(t *testing.T) {
	g, log := buildSmall(t)
	log.Drain()
	snap := g.ShallowClone()

	// Consolidate into the clone; the shared node value must stay intact.
	merged := NewNode(2, TypeUser)
	merged.Attrs = NewAttrs("city", "denver")
	if err := snap.Apply(Mutation{Kind: MutPutNode, Node: merged}); err != nil {
		t.Fatal(err)
	}
	if got := g.Node(2).Attrs.Get("city"); got != "" {
		t.Errorf("consolidation leaked into the original graph: city=%q", got)
	}
	if got := snap.Node(2).Attrs.Get("city"); got != "denver" {
		t.Errorf("consolidation missing from the clone: city=%q", got)
	}

	// Structural ops on the clone must not disturb the original either.
	if err := snap.Apply(Mutation{Kind: MutRemoveLink, Link: g.Link(1).Clone()}); err != nil {
		t.Fatal(err)
	}
	if !g.HasLink(1) {
		t.Error("link removal leaked into the original graph")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original graph corrupted: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Errorf("clone corrupted: %v", err)
	}
}

func TestApplyEndpointChange(t *testing.T) {
	g, _ := buildSmall(t)
	bad := NewLink(1, 1, 3, TypeConnect)
	if err := g.Apply(Mutation{Kind: MutPutLink, Link: bad}); err == nil {
		t.Fatal("expected endpoint-change error")
	}
}
