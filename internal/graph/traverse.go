package graph

import "sort"

// BFS visits nodes reachable from start following links in the given
// directions (Src means traverse a link from Tgt back to Src; Tgt means
// follow it forward). visit is called once per node in breadth-first order,
// starting with start; returning false stops the traversal.
func (g *Graph) BFS(start NodeID, followOut, followIn bool, visit func(id NodeID, depth int) bool) {
	if !g.HasNode(start) {
		return
	}
	type qe struct {
		id    NodeID
		depth int
	}
	seen := map[NodeID]struct{}{start: {}}
	queue := []qe{{start, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !visit(cur.id, cur.depth) {
			return
		}
		var next []NodeID
		if followOut {
			for _, l := range g.Out(cur.id) {
				next = append(next, l.Tgt)
			}
		}
		if followIn {
			for _, l := range g.In(cur.id) {
				next = append(next, l.Src)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, id := range next {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			queue = append(queue, qe{id, cur.depth + 1})
		}
	}
}

// Reachable returns the set of node ids reachable from start (following
// links in both directions), including start itself.
func (g *Graph) Reachable(start NodeID) map[NodeID]struct{} {
	out := make(map[NodeID]struct{})
	g.BFS(start, true, true, func(id NodeID, _ int) bool {
		out[id] = struct{}{}
		return true
	})
	return out
}

// ConnectedComponents returns the weakly connected components of the graph
// as sorted id slices, ordered by their smallest member.
func (g *Graph) ConnectedComponents() [][]NodeID {
	var comps [][]NodeID
	seen := make(map[NodeID]struct{}, g.NumNodes())
	for _, id := range g.NodeIDs() {
		if _, ok := seen[id]; ok {
			continue
		}
		var comp []NodeID
		g.BFS(id, true, true, func(n NodeID, _ int) bool {
			seen[n] = struct{}{}
			comp = append(comp, n)
			return true
		})
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// Path is a sequence of links where each link's source is the previous
// link's target (forward orientation).
type Path []*Link

// Last returns the final node of the path (the target of its last link).
func (p Path) Last() NodeID {
	if len(p) == 0 {
		return 0
	}
	return p[len(p)-1].Tgt
}

// PathsMatching enumerates every forward path starting at start whose i-th
// link satisfies match(i, link), with exactly `steps` links. Paths may
// revisit nodes but never reuse a link. The enumeration order is
// deterministic (link-id order at each step). The Figure 2 graph-pattern
// aggregation is evaluated on top of this primitive.
func (g *Graph) PathsMatching(start NodeID, steps int, match func(step int, l *Link) bool) []Path {
	if steps <= 0 || !g.HasNode(start) {
		return nil
	}
	var out []Path
	used := make(map[LinkID]struct{})
	var rec func(at NodeID, step int, cur Path)
	rec = func(at NodeID, step int, cur Path) {
		if step == steps {
			cp := make(Path, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for _, l := range g.Out(at) {
			if _, ok := used[l.ID]; ok {
				continue
			}
			if !match(step, l) {
				continue
			}
			used[l.ID] = struct{}{}
			rec(l.Tgt, step+1, append(cur, l))
			delete(used, l.ID)
		}
	}
	rec(start, 0, nil)
	return out
}
