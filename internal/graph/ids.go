package graph

import "sync/atomic"

// IDSource allocates fresh node and link ids within a site's id space.
// Operators that create new elements (composition, link aggregation, pattern
// aggregation) draw from an IDSource seeded past the base graph's maxima so
// derived ids never collide with stored ones. It is safe for concurrent use.
type IDSource struct {
	node atomic.Int64
	link atomic.Int64
}

// NewIDSource returns an allocator that starts after the given maxima.
func NewIDSource(maxNode NodeID, maxLink LinkID) *IDSource {
	s := &IDSource{}
	s.node.Store(int64(maxNode))
	s.link.Store(int64(maxLink))
	return s
}

// IDSourceFor returns an allocator positioned after every id g has ever
// held. It seeds from the graph's O(1) high-water marks — not a scan of
// the present ids — so an id retracted by RemoveNode/RemoveLink is never
// handed out again: reusing it would alias the retracted element in
// incremental index deltas and changelog replays.
func IDSourceFor(g *Graph) *IDSource {
	return NewIDSource(g.MaxNodeID(), g.MaxLinkID())
}

// NextNode returns a fresh node id.
func (s *IDSource) NextNode() NodeID { return NodeID(s.node.Add(1)) }

// NextLink returns a fresh link id.
func (s *IDSource) NextLink() LinkID { return LinkID(s.link.Add(1)) }

// Builder constructs site graphs fluently. It panics on structural errors
// (duplicate ids, dangling endpoints), which in construction code are
// programming errors; data-driven loading paths use Graph.AddNode/AddLink
// and handle errors as values.
type Builder struct {
	g   *Graph
	ids *IDSource
}

// NewBuilder returns a builder over a fresh graph. Construction runs in a
// bulk-mutation window (the builder owns the graph until Graph() hands it
// out), so large synthetic corpora and loaders built fluently pay
// transient, not per-write path-copy, allocation costs.
func NewBuilder() *Builder {
	b := &Builder{g: New(), ids: NewIDSource(0, 0)}
	b.g.BeginBulk()
	return b
}

// Node adds a node with a fresh id, the given types, and alternating
// key/value attributes; it returns the id.
func (b *Builder) Node(types []string, kv ...string) NodeID {
	id := b.ids.NextNode()
	n := NewNode(id, types...)
	n.Attrs = NewAttrs(kv...)
	if err := b.g.AddNode(n); err != nil {
		panic(err)
	}
	return id
}

// NodeWithID adds a node with an explicit id.
func (b *Builder) NodeWithID(id NodeID, types []string, kv ...string) NodeID {
	n := NewNode(id, types...)
	n.Attrs = NewAttrs(kv...)
	if err := b.g.AddNode(n); err != nil {
		panic(err)
	}
	if cur := b.ids.node.Load(); int64(id) > cur {
		b.ids.node.Store(int64(id))
	}
	return id
}

// Link adds a link with a fresh id between existing nodes; it returns the id.
func (b *Builder) Link(src, tgt NodeID, types []string, kv ...string) LinkID {
	id := b.ids.NextLink()
	l := NewLink(id, src, tgt, types...)
	l.Attrs = NewAttrs(kv...)
	if err := b.g.AddLink(l); err != nil {
		panic(err)
	}
	return id
}

// Graph returns the built graph, sealing the builder's bulk-mutation
// window first so the result is safe to publish to concurrent readers.
// The builder remains usable; subsequent additions keep mutating the same
// graph through the ordinary persistent per-write path.
func (b *Builder) Graph() *Graph {
	b.g.EndBulk()
	return b.g
}

// Peek returns the graph without sealing the bulk-mutation window. It is
// for mid-construction reads by the builder's owner (looking up a node
// just built, setting attributes on it); the result must not be handed to
// other goroutines — publish through Graph instead, which seals.
func (b *Builder) Peek() *Graph { return b.g }

// IDs returns the builder's id allocator, positioned after everything built
// so far.
func (b *Builder) IDs() *IDSource { return b.ids }
