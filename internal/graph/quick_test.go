package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a pseudo-random graph from a seed: n nodes, up to m
// links with random endpoints and types. Deterministic per seed.
func randomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	types := []string{TypeUser, TypeItem, TypeTopic}
	ltypes := []string{TypeConnect, TypeAct, TypeMatch, TypeBelong}
	for i := 1; i <= n; i++ {
		nd := NewNode(NodeID(i), types[rng.Intn(len(types))])
		nd.Attrs.SetInt("x", rng.Int63n(100))
		if err := g.AddNode(nd); err != nil {
			panic(err)
		}
	}
	for i := 1; i <= m; i++ {
		src := NodeID(rng.Intn(n) + 1)
		tgt := NodeID(rng.Intn(n) + 1)
		l := NewLink(LinkID(i), src, tgt, ltypes[rng.Intn(len(ltypes))])
		l.Attrs.SetFloat("w", rng.Float64())
		if err := g.AddLink(l); err != nil {
			panic(err)
		}
	}
	return g
}

func TestQuickRandomGraphsValidate(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 40)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 30)
		c := g.Clone()
		return g.Equal(c) && c.Equal(g) && c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodeDecodeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 10, 20)
		var buf buffer
		if err := g.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return g.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// buffer is a minimal bytes buffer to avoid importing bytes in this file.
type buffer struct{ data []byte }

func (b *buffer) Write(p []byte) (int, error) { b.data = append(b.data, p...); return len(p), nil }
func (b *buffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, errEOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

var errEOF = eofError{}

type eofError struct{}

func (eofError) Error() string { return "EOF" }

func TestQuickInducedSubgraphIsSubgraph(t *testing.T) {
	f := func(seed int64, mask uint16) bool {
		g := randomGraph(seed, 12, 25)
		ids := make(map[NodeID]struct{})
		for i, id := range g.NodeIDs() {
			if mask&(1<<uint(i%16)) != 0 {
				ids[id] = struct{}{}
			}
		}
		sub := g.InducedByNodes(ids)
		if sub.Validate() != nil {
			return false
		}
		// Every sub link exists in g with both endpoints in the mask set.
		for _, l := range sub.Links() {
			if !g.HasLink(l.ID) {
				return false
			}
			if _, ok := ids[l.Src]; !ok {
				return false
			}
			if _, ok := ids[l.Tgt]; !ok {
				return false
			}
		}
		// Maximality: any g link with both endpoints selected must be in sub.
		for _, l := range g.Links() {
			_, sOK := ids[l.Src]
			_, tOK := ids[l.Tgt]
			if sOK && tOK && !sub.HasLink(l.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickReachableClosedUnderNeighbors(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 25)
		start := g.NodeIDs()[0]
		r := g.Reachable(start)
		for id := range r {
			for _, nb := range g.Neighbors(id) {
				if _, ok := r[nb]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickComponentsPartitionNodes(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 18, 12)
		comps := g.ConnectedComponents()
		seen := make(map[NodeID]int)
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, id := range c {
				seen[id]++
			}
		}
		if total != g.NumNodes() {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
