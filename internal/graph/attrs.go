package graph

import (
	"sort"
	"strconv"
	"strings"
)

// Attrs holds the schema-less, multi-valued structural attributes of a node
// or link. The paper's satisfaction rule (Section 5.1) treats an attribute's
// values as a set: a condition att=v1,...,vk is satisfied when the stored
// value set is a superset of {v1,...,vk}. Values are kept in insertion order
// but compared as sets.
type Attrs map[string][]string

// NewAttrs builds an attribute map from alternating key/value pairs.
// Repeated keys accumulate multiple values. It panics on an odd number of
// arguments, which is always a programming error, never data-dependent.
func NewAttrs(kv ...string) Attrs {
	if len(kv)%2 != 0 {
		panic("graph.NewAttrs: odd number of key/value arguments")
	}
	a := make(Attrs, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		a.Add(kv[i], kv[i+1])
	}
	return a
}

// Get returns the first value of the attribute, or "" if absent.
func (a Attrs) Get(key string) string {
	vs := a[key]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// All returns every value of the attribute (possibly nil). The returned
// slice is the stored slice; callers must not mutate it.
func (a Attrs) All(key string) []string {
	return a[key]
}

// Set replaces all values of the attribute with the given ones.
func (a Attrs) Set(key string, values ...string) {
	a[key] = append([]string(nil), values...)
}

// Add appends a value to the attribute if not already present (set
// semantics on write keep Has/Superset checks linear in practice).
func (a Attrs) Add(key, value string) {
	for _, v := range a[key] {
		if v == value {
			return
		}
	}
	a[key] = append(a[key], value)
}

// Has reports whether the attribute contains the given value.
func (a Attrs) Has(key, value string) bool {
	for _, v := range a[key] {
		if v == value {
			return true
		}
	}
	return false
}

// Superset reports whether the stored value set for key contains every value
// in want. This is the paper's structural-condition satisfaction rule.
func (a Attrs) Superset(key string, want []string) bool {
	for _, w := range want {
		if !a.Has(key, w) {
			return false
		}
	}
	return true
}

// Float parses the first value of the attribute as a float64. ok is false
// when the attribute is absent or not numeric.
func (a Attrs) Float(key string) (v float64, ok bool) {
	s := a.Get(key)
	if s == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// SetFloat stores a numeric value as the attribute's single value.
func (a Attrs) SetFloat(key string, v float64) {
	a.Set(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// Int parses the first value of the attribute as an int64.
func (a Attrs) Int(key string) (v int64, ok bool) {
	s := a.Get(key)
	if s == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// SetInt stores an integer value as the attribute's single value.
func (a Attrs) SetInt(key string, v int64) {
	a.Set(key, strconv.FormatInt(v, 10))
}

// Keys returns the attribute names in sorted order, giving deterministic
// iteration for encoding and tests.
func (a Attrs) Keys() []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone returns a deep copy. Operators in the algebra clone attributes
// before mutating so that input graphs are never modified.
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	c := make(Attrs, len(a))
	for k, vs := range a {
		c[k] = append([]string(nil), vs...)
	}
	return c
}

// Merge folds the other attribute map into this one with set semantics per
// key. Used when set-theoretic operators consolidate two nodes or links with
// the same id (Definition 3).
func (a Attrs) Merge(other Attrs) {
	for _, k := range other.Keys() {
		for _, v := range other[k] {
			a.Add(k, v)
		}
	}
}

// Equal reports whether two attribute maps hold the same value sets.
func (a Attrs) Equal(other Attrs) bool {
	if len(a) != len(other) {
		return false
	}
	for k, vs := range a {
		ws, ok := other[k]
		if !ok || len(vs) != len(ws) {
			return false
		}
		if !a.Superset(k, ws) || !other.Superset(k, vs) {
			return false
		}
	}
	return true
}

// Text concatenates every attribute value into a single lowercase string for
// keyword scoring. The mandatory type attribute participates, matching the
// paper's use of content conditions against whole entities.
func (a Attrs) Text() string {
	var sb strings.Builder
	for _, k := range a.Keys() {
		for _, v := range a[k] {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strings.ToLower(v))
		}
	}
	return sb.String()
}

// String renders the attributes in a stable {k=v1,v2; ...} form.
func (a Attrs) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range a.Keys() {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(strings.Join(a[k], ","))
	}
	sb.WriteByte('}')
	return sb.String()
}
