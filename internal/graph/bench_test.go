package graph

import "testing"

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	g := randomGraph(42, n, m)
	b.ResetTimer()
	return g
}

func BenchmarkAddLink(b *testing.B) {
	g := New()
	for i := 1; i <= 2; i++ {
		if err := g.AddNode(NewNode(NodeID(i), TypeUser)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.AddLink(NewLink(LinkID(i+1), 1, 2, TypeConnect)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	g := benchGraph(b, 500, 2000)
	for i := 0; i < b.N; i++ {
		g.Clone()
	}
}

func BenchmarkShallowClone(b *testing.B) {
	g := benchGraph(b, 500, 2000)
	for i := 0; i < b.N; i++ {
		g.ShallowClone()
	}
}

func BenchmarkInducedByNodes(b *testing.B) {
	g := benchGraph(b, 500, 2000)
	keep := make(map[NodeID]struct{})
	for _, id := range g.NodeIDs()[:250] {
		keep[id] = struct{}{}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.InducedByNodes(keep)
	}
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b, 500, 2000)
	start := g.NodeIDs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		g.BFS(start, true, true, func(NodeID, int) bool { count++; return true })
	}
}

func BenchmarkValidate(b *testing.B) {
	g := benchGraph(b, 500, 2000)
	for i := 0; i < b.N; i++ {
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
