package graph

// Binary codecs for the durability subsystem: compact encodings of
// nodes, links and mutation batches (WAL record payloads), and the
// graph checkpoint built on persist's delta node encoding. JSON
// (encode.go) remains the interchange format for datasets; this format
// is the on-disk format of the WAL and checkpoint files, where byte
// economy and deterministic encoding matter.
//
// All encoders are canonical: attribute keys are written sorted, so
// equal values encode to equal bytes and unchanged trie regions encode
// identically checkpoint after checkpoint.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"socialscope/internal/persist"
)

// ErrBinCorrupt is returned by the binary decoders on malformed input.
var ErrBinCorrupt = errors.New("graph: corrupt binary encoding")

func binUvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, ErrBinCorrupt
	}
	return v, n, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func binString(src []byte) (string, int, error) {
	l, n, err := binUvarint(src)
	if err != nil || l > uint64(len(src)-n) {
		return "", 0, ErrBinCorrupt
	}
	return string(src[n : n+int(l)]), n + int(l), nil
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendString(dst, s)
	}
	return dst
}

func binStrings(src []byte) ([]string, int, error) {
	count, off, err := binUvarint(src)
	if err != nil || count > uint64(len(src)) {
		return nil, 0, ErrBinCorrupt
	}
	var ss []string
	for i := uint64(0); i < count; i++ {
		s, n, err := binString(src[off:])
		if err != nil {
			return nil, 0, err
		}
		ss = append(ss, s)
		off += n
	}
	return ss, off, nil
}

func appendAttrs(dst []byte, a Attrs) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(a)))
	for _, k := range a.Keys() { // sorted: canonical bytes
		dst = appendString(dst, k)
		dst = appendStrings(dst, a[k])
	}
	return dst
}

func binAttrs(src []byte) (Attrs, int, error) {
	count, off, err := binUvarint(src)
	if err != nil || count > uint64(len(src)) {
		return nil, 0, ErrBinCorrupt
	}
	if count == 0 {
		return Attrs{}, off, nil
	}
	a := make(Attrs, count)
	for i := uint64(0); i < count; i++ {
		k, n, err := binString(src[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		vs, n, err := binStrings(src[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		a[k] = vs
	}
	return a, off, nil
}

func appendScore(dst []byte, score float64, scored bool) []byte {
	if !scored {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(score))
}

func binScore(src []byte) (float64, bool, int, error) {
	if len(src) < 1 {
		return 0, false, 0, ErrBinCorrupt
	}
	if src[0] == 0 {
		return 0, false, 1, nil
	}
	if src[0] != 1 || len(src) < 9 {
		return 0, false, 0, ErrBinCorrupt
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(src[1:9])), true, 9, nil
}

// AppendNodeBin appends the binary encoding of n to dst.
func AppendNodeBin(dst []byte, n *Node) []byte {
	dst = binary.AppendUvarint(dst, uint64(n.ID))
	dst = appendStrings(dst, n.Types)
	dst = appendAttrs(dst, n.Attrs)
	return appendScore(dst, n.Score, n.Scored)
}

// DecodeNodeBin decodes one node from the front of src, returning it
// and the bytes consumed.
func DecodeNodeBin(src []byte) (*Node, int, error) {
	id, off, err := binUvarint(src)
	if err != nil {
		return nil, 0, err
	}
	types, n, err := binStrings(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	attrs, n, err := binAttrs(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	score, scored, n, err := binScore(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	return &Node{ID: NodeID(id), Types: types, Attrs: attrs, Score: score, Scored: scored}, off, nil
}

// AppendLinkBin appends the binary encoding of l to dst.
func AppendLinkBin(dst []byte, l *Link) []byte {
	dst = binary.AppendUvarint(dst, uint64(l.ID))
	dst = binary.AppendUvarint(dst, uint64(l.Src))
	dst = binary.AppendUvarint(dst, uint64(l.Tgt))
	dst = appendStrings(dst, l.Types)
	dst = appendAttrs(dst, l.Attrs)
	return appendScore(dst, l.Score, l.Scored)
}

// DecodeLinkBin decodes one link from the front of src, returning it
// and the bytes consumed.
func DecodeLinkBin(src []byte) (*Link, int, error) {
	id, off, err := binUvarint(src)
	if err != nil {
		return nil, 0, err
	}
	srcID, n, err := binUvarint(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	tgtID, n, err := binUvarint(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	types, n, err := binStrings(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	attrs, n, err := binAttrs(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	score, scored, n, err := binScore(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	return &Link{
		ID: LinkID(id), Src: NodeID(srcID), Tgt: NodeID(tgtID),
		Types: types, Attrs: attrs, Score: score, Scored: scored,
	}, off, nil
}

// AppendMutations appends the binary encoding of a mutation batch to
// dst — the WAL record payload for one Engine.Apply batch.
func AppendMutations(dst []byte, muts []Mutation) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(muts)))
	for _, m := range muts {
		dst = append(dst, byte(m.Kind))
		var flags byte
		if m.Node != nil {
			flags |= 1
		}
		if m.Link != nil {
			flags |= 2
		}
		if m.Prev != nil {
			flags |= 4
		}
		dst = append(dst, flags)
		if m.Node != nil {
			dst = AppendNodeBin(dst, m.Node)
		}
		if m.Link != nil {
			dst = AppendLinkBin(dst, m.Link)
		}
		if m.Prev != nil {
			dst = AppendLinkBin(dst, m.Prev)
		}
	}
	return dst
}

// DecodeMutations decodes a mutation batch encoded by AppendMutations.
// The whole of src must be consumed.
func DecodeMutations(src []byte) ([]Mutation, error) {
	count, off, err := binUvarint(src)
	if err != nil || count > uint64(len(src)) {
		return nil, ErrBinCorrupt
	}
	muts := make([]Mutation, 0, count)
	for i := uint64(0); i < count; i++ {
		if off+2 > len(src) {
			return nil, ErrBinCorrupt
		}
		kind := MutationKind(src[off])
		flags := src[off+1]
		off += 2
		if kind > MutRemoveLink || flags&^byte(7) != 0 {
			return nil, ErrBinCorrupt
		}
		var m Mutation
		m.Kind = kind
		if flags&1 != 0 {
			node, n, err := DecodeNodeBin(src[off:])
			if err != nil {
				return nil, err
			}
			m.Node = node
			off += n
		}
		if flags&2 != 0 {
			link, n, err := DecodeLinkBin(src[off:])
			if err != nil {
				return nil, err
			}
			m.Link = link
			off += n
		}
		if flags&4 != 0 {
			prev, n, err := DecodeLinkBin(src[off:])
			if err != nil {
				return nil, err
			}
			m.Prev = prev
			off += n
		}
		muts = append(muts, m)
	}
	if off != len(src) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBinCorrupt, len(src)-off)
	}
	return muts, nil
}

// CkptWriter carries the delta state of one graph lineage across
// checkpoints: the node and link tries it has already written. A fresh
// writer produces a full checkpoint; the same writer invoked later
// writes only trie nodes created since — on an append-heavy stream,
// a small fraction of the graph.
type CkptWriter struct {
	nodes *persist.CkptState[NodeID, *Node]
	links *persist.CkptState[LinkID, *Link]
}

// NewCkptWriter returns a writer whose first checkpoint is full.
func NewCkptWriter() *CkptWriter {
	return &CkptWriter{
		nodes: persist.NewCkptState[NodeID, *Node](),
		links: persist.NewCkptState[LinkID, *Link](),
	}
}

// AppendCheckpoint appends g's checkpoint section to dst: the node and
// link trie deltas plus root ids, sizes and the id high-water marks.
// Adjacency indexes are not written — they are a deterministic function
// of the link set and are rebuilt on load.
func (w *CkptWriter) AppendCheckpoint(dst []byte, g *Graph) []byte {
	nodeDelta, nodeRoot := w.nodes.EncodeDelta(nil, g.nodes,
		func(b []byte, id NodeID) []byte { return binary.AppendUvarint(b, uint64(id)) },
		AppendNodeBin)
	linkDelta, linkRoot := w.links.EncodeDelta(nil, g.links,
		func(b []byte, id LinkID) []byte { return binary.AppendUvarint(b, uint64(id)) },
		AppendLinkBin)
	dst = binary.AppendUvarint(dst, uint64(len(nodeDelta)))
	dst = append(dst, nodeDelta...)
	dst = binary.AppendUvarint(dst, nodeRoot)
	dst = binary.AppendUvarint(dst, uint64(g.nodes.Len()))
	dst = binary.AppendUvarint(dst, uint64(len(linkDelta)))
	dst = append(dst, linkDelta...)
	dst = binary.AppendUvarint(dst, linkRoot)
	dst = binary.AppendUvarint(dst, uint64(g.links.Len()))
	dst = binary.AppendUvarint(dst, uint64(g.maxNode))
	dst = binary.AppendUvarint(dst, uint64(g.maxLink))
	return dst
}

// CkptReader accumulates a checkpoint chain — the full checkpoint, then
// each delta in order — and materializes the graph each stage encoded.
type CkptReader struct {
	nodes persist.CkptLoader[NodeID, *Node]
	links persist.CkptLoader[LinkID, *Link]
}

// NewCkptReader returns an empty reader.
func NewCkptReader() *CkptReader { return &CkptReader{} }

func decNodeID(src []byte) (NodeID, int, error) {
	v, n, err := binUvarint(src)
	return NodeID(v), n, err
}

func decLinkID(src []byte) (LinkID, int, error) {
	v, n, err := binUvarint(src)
	return LinkID(v), n, err
}

// Apply decodes one checkpoint section on top of the chain read so far
// and returns the graph it encodes: node and link maps materialized
// from the accumulated tries, adjacency rebuilt from the link set in
// the same ascending-id order every Graph maintains.
func (r *CkptReader) Apply(data []byte) (*Graph, error) {
	readUvarint := func(off *int) (uint64, error) {
		v, n, err := binUvarint(data[*off:])
		if err != nil {
			return 0, err
		}
		*off += n
		return v, nil
	}
	off := 0
	readSection := func() ([]byte, error) {
		l, err := readUvarint(&off)
		if err != nil || l > uint64(len(data)-off) {
			return nil, ErrBinCorrupt
		}
		sec := data[off : off+int(l)]
		off += int(l)
		return sec, nil
	}

	nodeDelta, err := readSection()
	if err != nil {
		return nil, err
	}
	if err := r.nodes.DecodeDelta(nodeDelta, decNodeID, DecodeNodeBin); err != nil {
		return nil, err
	}
	nodeRoot, err := readUvarint(&off)
	if err != nil {
		return nil, err
	}
	nodeCount, err := readUvarint(&off)
	if err != nil {
		return nil, err
	}
	linkDelta, err := readSection()
	if err != nil {
		return nil, err
	}
	if err := r.links.DecodeDelta(linkDelta, decLinkID, DecodeLinkBin); err != nil {
		return nil, err
	}
	linkRoot, err := readUvarint(&off)
	if err != nil {
		return nil, err
	}
	linkCount, err := readUvarint(&off)
	if err != nil {
		return nil, err
	}
	maxNode, err := readUvarint(&off)
	if err != nil {
		return nil, err
	}
	maxLink, err := readUvarint(&off)
	if err != nil {
		return nil, err
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing checkpoint bytes", ErrBinCorrupt, len(data)-off)
	}

	g := New()
	if g.nodes, err = r.nodes.Map(g.nodes, nodeRoot, int(nodeCount)); err != nil {
		return nil, err
	}
	if g.links, err = r.links.Map(g.links, linkRoot, int(linkCount)); err != nil {
		return nil, err
	}
	g.maxNode = NodeID(maxNode)
	g.maxLink = LinkID(maxLink)
	if g.maxNode < 0 || g.maxLink < 0 {
		return nil, fmt.Errorf("%w: negative high-water mark", ErrBinCorrupt)
	}
	g.rebuildAdjacency()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: checkpoint inconsistent: %w", err)
	}
	return g, nil
}

// rebuildAdjacency derives the out/in indexes from the link set, in the
// canonical ascending-link-id order, inside a bulk window.
func (g *Graph) rebuildAdjacency() {
	g.BeginBulk()
	defer g.EndBulk()
	ls := make([]*Link, 0, g.links.Len())
	g.links.Range(func(_ LinkID, l *Link) bool {
		ls = append(ls, l)
		return true
	})
	sort.Slice(ls, func(i, j int) bool { return ls[i].ID < ls[j].ID })
	out := make(map[NodeID][]LinkID)
	in := make(map[NodeID][]LinkID)
	for _, l := range ls {
		out[l.Src] = append(out[l.Src], l.ID)
		in[l.Tgt] = append(in[l.Tgt], l.ID)
	}
	for id, ids := range out {
		g.out = g.out.SetWith(g.bulk, id, ids)
	}
	for id, ids := range in {
		g.in = g.in.SetWith(g.bulk, id, ids)
	}
}
