package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"socialscope/internal/graph"
)

// Itemset is a sorted set of items (tags, item names) with its support.
type Itemset struct {
	Items   []string
	Support int // number of transactions containing the set
}

// Rule is an association rule X ⇒ Y with its support and confidence.
type Rule struct {
	Antecedent []string
	Consequent []string
	Support    int     // transactions containing X ∪ Y
	Confidence float64 // support(X ∪ Y) / support(X)
}

func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (sup=%d conf=%.2f)",
		strings.Join(r.Antecedent, ","), strings.Join(r.Consequent, ","),
		r.Support, r.Confidence)
}

// AprioriConfig bounds the mining run.
type AprioriConfig struct {
	MinSupport    int     // minimum absolute support (default 2)
	MinConfidence float64 // minimum rule confidence (default 0.5)
	MaxLen        int     // largest itemset size explored (default 4)
}

func (c *AprioriConfig) fill() {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.5
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 4
	}
}

// Apriori mines frequent itemsets from the transactions with the classic
// level-wise algorithm [3]: candidates of size k are joins of frequent
// (k-1)-itemsets, pruned by the downward-closure property, then counted in
// one pass.
func Apriori(transactions [][]string, cfg AprioriConfig) []Itemset {
	cfg.fill()
	// Normalize transactions to sorted distinct item slices.
	txs := make([][]string, 0, len(transactions))
	for _, t := range transactions {
		set := make(map[string]struct{}, len(t))
		for _, it := range t {
			set[it] = struct{}{}
		}
		row := make([]string, 0, len(set))
		for it := range set {
			row = append(row, it)
		}
		sort.Strings(row)
		txs = append(txs, row)
	}

	var result []Itemset
	// L1.
	counts := make(map[string]int)
	for _, t := range txs {
		for _, it := range t {
			counts[it]++
		}
	}
	var frequent [][]string
	for it, c := range counts {
		if c >= cfg.MinSupport {
			frequent = append(frequent, []string{it})
			result = append(result, Itemset{Items: []string{it}, Support: c})
		}
	}
	sortSets(frequent)

	for k := 2; k <= cfg.MaxLen && len(frequent) > 1; k++ {
		candidates := joinSets(frequent)
		candidates = pruneByClosure(candidates, frequent)
		if len(candidates) == 0 {
			break
		}
		supp := make([]int, len(candidates))
		for _, t := range txs {
			for i, c := range candidates {
				if containsAll(t, c) {
					supp[i]++
				}
			}
		}
		frequent = frequent[:0]
		for i, c := range candidates {
			if supp[i] >= cfg.MinSupport {
				frequent = append(frequent, c)
				result = append(result, Itemset{Items: c, Support: supp[i]})
			}
		}
		sortSets(frequent)
	}
	sort.Slice(result, func(i, j int) bool {
		if len(result[i].Items) != len(result[j].Items) {
			return len(result[i].Items) < len(result[j].Items)
		}
		return strings.Join(result[i].Items, ",") < strings.Join(result[j].Items, ",")
	})
	return result
}

// Rules derives association rules from the frequent itemsets: for every
// frequent set S of size ≥ 2 and every single-item consequent y ∈ S, emit
// S\{y} ⇒ {y} when confident enough. Single-consequent rules are the form
// recommendation pipelines consume ("users who tagged X also tag Y").
func Rules(itemsets []Itemset, cfg AprioriConfig) []Rule {
	cfg.fill()
	support := make(map[string]int, len(itemsets))
	for _, is := range itemsets {
		support[strings.Join(is.Items, "\x00")] = is.Support
	}
	var rules []Rule
	for _, is := range itemsets {
		if len(is.Items) < 2 {
			continue
		}
		for i, y := range is.Items {
			ante := make([]string, 0, len(is.Items)-1)
			ante = append(ante, is.Items[:i]...)
			ante = append(ante, is.Items[i+1:]...)
			anteSup, ok := support[strings.Join(ante, "\x00")]
			if !ok || anteSup == 0 {
				continue
			}
			conf := float64(is.Support) / float64(anteSup)
			if conf >= cfg.MinConfidence {
				rules = append(rules, Rule{
					Antecedent: ante, Consequent: []string{y},
					Support: is.Support, Confidence: conf,
				})
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].String() < rules[j].String()
	})
	return rules
}

// TagTransactions extracts one transaction per user from a social content
// graph: the set of tag values the user has assigned across tagging links.
// Users with no tags produce no transaction.
func TagTransactions(g *graph.Graph) [][]string {
	var txs [][]string
	for _, u := range g.NodesOfType(graph.TypeUser) {
		var tags []string
		for _, l := range g.Out(u.ID) {
			if l.HasType(graph.SubtypeTag) {
				tags = append(tags, l.Attrs.All("tags")...)
			}
		}
		if len(tags) > 0 {
			txs = append(txs, tags)
		}
	}
	return txs
}

func sortSets(sets [][]string) {
	sort.Slice(sets, func(i, j int) bool {
		return strings.Join(sets[i], "\x00") < strings.Join(sets[j], "\x00")
	})
}

// joinSets produces k-candidates from sorted (k-1)-frequent sets sharing a
// (k-2)-prefix.
func joinSets(frequent [][]string) [][]string {
	var out [][]string
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i], frequent[j]
			k := len(a)
			if !equalPrefix(a, b, k-1) {
				continue
			}
			cand := make([]string, k+1)
			copy(cand, a)
			cand[k] = b[k-1]
			if cand[k-1] > cand[k] {
				cand[k-1], cand[k] = cand[k], cand[k-1]
			}
			out = append(out, cand)
		}
	}
	return out
}

func equalPrefix(a, b []string, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pruneByClosure drops candidates with an infrequent (k-1)-subset.
func pruneByClosure(candidates, frequent [][]string) [][]string {
	freq := make(map[string]struct{}, len(frequent))
	for _, f := range frequent {
		freq[strings.Join(f, "\x00")] = struct{}{}
	}
	var out [][]string
	for _, c := range candidates {
		ok := true
		sub := make([]string, len(c)-1)
		for drop := 0; drop < len(c) && ok; drop++ {
			copy(sub, c[:drop])
			copy(sub[drop:], c[drop+1:])
			if _, present := freq[strings.Join(sub, "\x00")]; !present {
				ok = false
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// containsAll reports whether the sorted transaction contains every item of
// the sorted candidate.
func containsAll(tx, cand []string) bool {
	i := 0
	for _, item := range tx {
		if i == len(cand) {
			return true
		}
		if item == cand[i] {
			i++
		}
	}
	return i == len(cand)
}
