package analyzer

import (
	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// UserProfile is the per-user view the similarity analyses operate on:
// network(u), the users connected to u, and items(u), the items u has acted
// on (tagged, visited, reviewed, ...).
type UserProfile struct {
	ID      graph.NodeID
	Network scoring.Set[graph.NodeID]
	Items   scoring.Set[graph.NodeID]
}

// Profiles extracts the user profiles from a social content graph.
// Connections are links of type connect (either direction); items are
// targets of act links.
func Profiles(g *graph.Graph) map[graph.NodeID]*UserProfile {
	out := make(map[graph.NodeID]*UserProfile)
	for _, u := range g.NodesOfType(graph.TypeUser) {
		out[u.ID] = &UserProfile{
			ID:      u.ID,
			Network: scoring.NewSet[graph.NodeID](),
			Items:   scoring.NewSet[graph.NodeID](),
		}
	}
	for _, l := range g.Links() {
		switch {
		case l.HasType(graph.TypeConnect):
			if p, ok := out[l.Src]; ok {
				p.Network.Add(l.Tgt)
			}
			if p, ok := out[l.Tgt]; ok {
				p.Network.Add(l.Src)
			}
		case l.HasType(graph.TypeAct):
			if p, ok := out[l.Src]; ok {
				p.Items.Add(l.Tgt)
			}
		}
	}
	return out
}

// DeriveMatches adds derived 'match' links between every pair of users
// whose item sets have Jaccard similarity ≥ threshold — the off-line
// analysis that seeds the similarity network Examples 2 and 5 consult. The
// input graph is not mutated; the returned graph carries one directed match
// link per ordered pair (u,v), u ≠ v, with the similarity stored in 'sim'.
func DeriveMatches(g *graph.Graph, threshold float64) *graph.Graph {
	profiles := Profiles(g)
	out := g.Clone()
	out.BeginBulk() // out is private until returned; sealed below
	ids := graph.IDSourceFor(out)
	users := make([]graph.NodeID, 0, len(profiles))
	for id := range profiles {
		users = append(users, id)
	}
	// Deterministic order.
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			if users[i] > users[j] {
				users[i], users[j] = users[j], users[i]
			}
		}
	}
	for i, u := range users {
		for _, v := range users[i+1:] {
			sim := scoring.Jaccard(profiles[u].Items, profiles[v].Items)
			if sim < threshold || sim == 0 {
				continue
			}
			for _, pair := range [][2]graph.NodeID{{u, v}, {v, u}} {
				ml := graph.NewLink(ids.NextLink(), pair[0], pair[1], graph.TypeMatch)
				ml.Attrs.SetFloat("sim", sim)
				if err := out.AddLink(ml); err != nil {
					// Both endpoints exist in the clone; AddLink can only
					// fail on a duplicate id, which NextLink precludes.
					panic("analyzer: DeriveMatches internal: " + err.Error())
				}
			}
		}
	}
	out.EndBulk()
	return out
}

// ExpertsOn returns the users with the most act links to items whose text
// matches every query keyword — the "identify a group of experts on the
// topic" fallback of Example 2. Users are returned in decreasing activity
// order (ties by id); at most n users.
func ExpertsOn(g *graph.Graph, keywords []string, n int) []graph.NodeID {
	if len(keywords) == 0 || n <= 0 {
		return nil
	}
	matching := make(map[graph.NodeID]struct{})
	for _, item := range g.NodesOfType(graph.TypeItem) {
		if scoring.DefaultScorer(keywords, item.Text()) == 1 {
			matching[item.ID] = struct{}{}
		}
	}
	type cnt struct {
		id graph.NodeID
		n  int
	}
	var counts []cnt
	for _, u := range g.NodesOfType(graph.TypeUser) {
		c := 0
		for _, l := range g.Out(u.ID) {
			if !l.HasType(graph.TypeAct) {
				continue
			}
			if _, ok := matching[l.Tgt]; ok {
				c++
			}
		}
		if c > 0 {
			counts = append(counts, cnt{u.ID, c})
		}
	}
	for i := 0; i < len(counts); i++ {
		for j := i + 1; j < len(counts); j++ {
			if counts[j].n > counts[i].n || (counts[j].n == counts[i].n && counts[j].id < counts[i].id) {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	n = min(n, len(counts))
	out := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = counts[i].id
	}
	return out
}
