package analyzer

import "testing"

func BenchmarkFitLDA(b *testing.B) {
	docs := ldaDocs()
	for i := 0; i < b.N; i++ {
		if _, err := FitLDA(docs, LDAConfig{Topics: 2, Iterations: 100, Seed: 1, Alpha: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAprioriMining(b *testing.B) {
	rng := newRand(42)
	universe := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	txs := make([][]string, 200)
	for i := range txs {
		var tx []string
		for _, it := range universe {
			if rng.Intn(3) == 0 {
				tx = append(tx, it)
			}
		}
		txs[i] = tx
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := Apriori(txs, AprioriConfig{MinSupport: 10, MaxLen: 4})
		Rules(sets, AprioriConfig{MinSupport: 10, MinConfidence: 0.5})
	}
}
