// Package analyzer implements SocialScope's Content Analyzer (Section 3):
// the off-line analyses that derive new nodes (topics) and links (belong,
// match) from the raw social content graph. The paper names Latent
// Dirichlet Allocation [8] and association rule mining [3] as the canonical
// analyses; both are implemented here from scratch on the standard library,
// plus the user-similarity derivation that Examples 2 and 5 rely on.
package analyzer

import (
	"fmt"
	"math/rand"
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/scoring"
)

// LDAConfig parameterizes the collapsed Gibbs sampler.
type LDAConfig struct {
	Topics     int     // number of latent topics K
	Alpha      float64 // document-topic Dirichlet prior (default 50/K)
	Beta       float64 // topic-word Dirichlet prior (default 0.01)
	Iterations int     // Gibbs sweeps (default 200)
	Seed       int64   // RNG seed; runs are deterministic per seed
}

func (c *LDAConfig) fill() error {
	if c.Topics <= 0 {
		return fmt.Errorf("analyzer: LDA requires Topics > 0, got %d", c.Topics)
	}
	if c.Alpha <= 0 {
		c.Alpha = 50.0 / float64(c.Topics)
	}
	if c.Beta <= 0 {
		c.Beta = 0.01
	}
	if c.Iterations <= 0 {
		c.Iterations = 200
	}
	return nil
}

// LDAModel is the fitted model: counts sufficient to produce the
// topic-word and document-topic distributions.
type LDAModel struct {
	Config   LDAConfig
	Vocab    []string // index → term
	vocabIdx map[string]int

	docs  [][]int // token streams as vocab indexes
	z     [][]int // topic assignment per token
	nw    [][]int // topic × word counts
	nd    [][]int // doc × topic counts
	nwSum []int   // tokens per topic
	ndSum []int   // tokens per doc
}

// FitLDA runs collapsed Gibbs sampling over the documents (each a slice of
// terms) and returns the fitted model. Empty documents are allowed and
// simply receive the uniform prior.
func FitLDA(docs [][]string, cfg LDAConfig) (*LDAModel, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("analyzer: LDA requires at least one document")
	}
	m := &LDAModel{Config: cfg, vocabIdx: make(map[string]int)}
	for _, d := range docs {
		row := make([]int, 0, len(d))
		for _, term := range d {
			idx, ok := m.vocabIdx[term]
			if !ok {
				idx = len(m.Vocab)
				m.vocabIdx[term] = idx
				m.Vocab = append(m.Vocab, term)
			}
			row = append(row, idx)
		}
		m.docs = append(m.docs, row)
	}
	if len(m.Vocab) == 0 {
		return nil, fmt.Errorf("analyzer: LDA requires a non-empty vocabulary")
	}

	k, v := cfg.Topics, len(m.Vocab)
	m.nw = make([][]int, k)
	for t := range m.nw {
		m.nw[t] = make([]int, v)
	}
	m.nd = make([][]int, len(m.docs))
	m.nwSum = make([]int, k)
	m.ndSum = make([]int, len(m.docs))
	m.z = make([][]int, len(m.docs))

	rng := rand.New(rand.NewSource(cfg.Seed))
	for d, doc := range m.docs {
		m.nd[d] = make([]int, k)
		m.z[d] = make([]int, len(doc))
		for i, w := range doc {
			t := rng.Intn(k)
			m.z[d][i] = t
			m.nw[t][w]++
			m.nd[d][t]++
			m.nwSum[t]++
			m.ndSum[d]++
		}
	}

	probs := make([]float64, k)
	for iter := 0; iter < cfg.Iterations; iter++ {
		for d, doc := range m.docs {
			for i, w := range doc {
				old := m.z[d][i]
				m.nw[old][w]--
				m.nd[d][old]--
				m.nwSum[old]--

				var total float64
				for t := 0; t < k; t++ {
					p := (float64(m.nd[d][t]) + cfg.Alpha) *
						(float64(m.nw[t][w]) + cfg.Beta) /
						(float64(m.nwSum[t]) + cfg.Beta*float64(v))
					probs[t] = p
					total += p
				}
				u := rng.Float64() * total
				t := 0
				for acc := probs[0]; acc < u && t < k-1; {
					t++
					acc += probs[t]
				}

				m.z[d][i] = t
				m.nw[t][w]++
				m.nd[d][t]++
				m.nwSum[t]++
			}
		}
	}
	return m, nil
}

// TopicWord returns φ[t][w]: the smoothed probability of word w in topic t.
func (m *LDAModel) TopicWord(t, w int) float64 {
	v := float64(len(m.Vocab))
	return (float64(m.nw[t][w]) + m.Config.Beta) / (float64(m.nwSum[t]) + m.Config.Beta*v)
}

// DocTopic returns θ[d][t]: the smoothed probability of topic t in doc d.
func (m *LDAModel) DocTopic(d, t int) float64 {
	k := float64(m.Config.Topics)
	return (float64(m.nd[d][t]) + m.Config.Alpha) / (float64(m.ndSum[d]) + m.Config.Alpha*k)
}

// TopTerms returns the n highest-probability terms of topic t.
func (m *LDAModel) TopTerms(t, n int) []string {
	type tw struct {
		w int
		p float64
	}
	all := make([]tw, len(m.Vocab))
	for w := range m.Vocab {
		all[w] = tw{w, m.TopicWord(t, w)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p > all[j].p
		}
		return m.Vocab[all[i].w] < m.Vocab[all[j].w]
	})
	n = min(n, len(all))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = m.Vocab[all[i].w]
	}
	return out
}

// DominantTopic returns the most probable topic of document d.
func (m *LDAModel) DominantTopic(d int) int {
	best, bestP := 0, -1.0
	for t := 0; t < m.Config.Topics; t++ {
		if p := m.DocTopic(d, t); p > bestP {
			best, bestP = t, p
		}
	}
	return best
}

// DeriveTopics runs LDA over the searchable text of the nodes carrying
// nodeType, then materializes the analysis into the graph the way the
// paper's Content Analyzer does: one new node of type 'topic' per latent
// topic (named by its top terms) and one 'belong' link from each document
// node to its dominant topic, weighted by the document-topic probability.
// It returns a new graph (the input is not mutated) plus the model.
func DeriveTopics(g *graph.Graph, nodeType string, cfg LDAConfig) (*graph.Graph, *LDAModel, error) {
	var docNodes []*graph.Node
	var docs [][]string
	for _, n := range g.Nodes() {
		if n.HasType(nodeType) {
			docNodes = append(docNodes, n)
			docs = append(docs, scoring.Tokenize(n.Text()))
		}
	}
	if len(docNodes) == 0 {
		return nil, nil, fmt.Errorf("analyzer: no nodes of type %q to analyze", nodeType)
	}
	model, err := FitLDA(docs, cfg)
	if err != nil {
		return nil, nil, err
	}
	out := g.Clone()
	out.BeginBulk() // out is private until returned; sealed below
	ids := graph.IDSourceFor(out)
	topicNodes := make([]graph.NodeID, cfg.Topics)
	for t := 0; t < cfg.Topics; t++ {
		tn := graph.NewNode(ids.NextNode(), graph.TypeTopic)
		terms := model.TopTerms(t, 3)
		tn.Attrs.Set("name", fmt.Sprintf("topic-%d", t))
		tn.Attrs.Set("terms", terms...)
		if err := out.AddNode(tn); err != nil {
			return nil, nil, err
		}
		topicNodes[t] = tn.ID
	}
	for d, n := range docNodes {
		t := model.DominantTopic(d)
		bl := graph.NewLink(ids.NextLink(), n.ID, topicNodes[t], graph.TypeBelong)
		bl.Attrs.SetFloat("weight", model.DocTopic(d, t))
		if err := out.AddLink(bl); err != nil {
			return nil, nil, err
		}
	}
	out.EndBulk()
	return out, model, nil
}
