package analyzer

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"socialscope/internal/graph"
)

// ldaDocs builds two clearly separated vocabularies: baseball docs and
// cooking docs. A 2-topic LDA must separate them.
func ldaDocs() [][]string {
	base := [][]string{
		{"baseball", "pitcher", "stadium", "baseball", "inning"},
		{"baseball", "stadium", "homerun", "pitcher"},
		{"inning", "homerun", "baseball", "pitcher", "stadium"},
		{"pitcher", "inning", "stadium", "homerun"},
	}
	cook := [][]string{
		{"recipe", "oven", "flour", "sugar", "recipe"},
		{"oven", "sugar", "flour", "butter"},
		{"butter", "recipe", "sugar", "oven"},
		{"flour", "butter", "recipe", "oven"},
	}
	return append(base, cook...)
}

func TestFitLDASeparatesTopics(t *testing.T) {
	m, err := FitLDA(ldaDocs(), LDAConfig{Topics: 2, Iterations: 300, Seed: 7, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Docs 0-3 share a dominant topic; docs 4-7 share the other.
	t0 := m.DominantTopic(0)
	for d := 1; d < 4; d++ {
		if m.DominantTopic(d) != t0 {
			t.Errorf("baseball doc %d assigned topic %d, want %d", d, m.DominantTopic(d), t0)
		}
	}
	t1 := m.DominantTopic(4)
	if t1 == t0 {
		t.Fatal("cooking docs share the baseball topic")
	}
	for d := 5; d < 8; d++ {
		if m.DominantTopic(d) != t1 {
			t.Errorf("cooking doc %d assigned topic %d, want %d", d, m.DominantTopic(d), t1)
		}
	}
	// Top terms of the baseball topic come from the baseball vocabulary.
	topTerms := strings.Join(m.TopTerms(t0, 3), " ")
	for _, bad := range []string{"recipe", "oven", "flour", "sugar", "butter"} {
		if strings.Contains(topTerms, bad) {
			t.Errorf("baseball topic top terms %q contain %q", topTerms, bad)
		}
	}
}

func TestLDADeterministicPerSeed(t *testing.T) {
	cfg := LDAConfig{Topics: 2, Iterations: 50, Seed: 42}
	m1, err := FitLDA(ldaDocs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FitLDA(ldaDocs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := range ldaDocs() {
		if m1.DominantTopic(d) != m2.DominantTopic(d) {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestLDAErrors(t *testing.T) {
	if _, err := FitLDA(ldaDocs(), LDAConfig{Topics: 0}); err == nil {
		t.Error("Topics=0 accepted")
	}
	if _, err := FitLDA(nil, LDAConfig{Topics: 2}); err == nil {
		t.Error("no documents accepted")
	}
	if _, err := FitLDA([][]string{{}, {}}, LDAConfig{Topics: 2}); err == nil {
		t.Error("empty vocabulary accepted")
	}
}

func TestLDADistributionsSumToOne(t *testing.T) {
	m, err := FitLDA(ldaDocs(), LDAConfig{Topics: 3, Iterations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for tpc := 0; tpc < 3; tpc++ {
		var sum float64
		for w := range m.Vocab {
			sum += m.TopicWord(tpc, w)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("topic %d word distribution sums to %f", tpc, sum)
		}
	}
	for d := range ldaDocs() {
		var sum float64
		for tpc := 0; tpc < 3; tpc++ {
			sum += m.DocTopic(d, tpc)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("doc %d topic distribution sums to %f", d, sum)
		}
	}
}

func TestDeriveTopics(t *testing.T) {
	b := graph.NewBuilder()
	for _, kw := range []string{"baseball stadium pitcher", "baseball homerun stadium",
		"recipe oven flour", "recipe sugar oven"} {
		b.Node([]string{graph.TypeItem}, "keywords", kw)
	}
	g := b.Graph()
	out, model, err := DeriveTopics(g, graph.TypeItem, LDAConfig{Topics: 2, Iterations: 200, Seed: 3, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("nil model")
	}
	if got := out.CountNodes(graph.TypeTopic); got != 2 {
		t.Fatalf("topic nodes = %d, want 2", got)
	}
	if got := out.CountLinks(graph.TypeBelong); got != 4 {
		t.Fatalf("belong links = %d, want 4", got)
	}
	// Input untouched.
	if g.CountNodes(graph.TypeTopic) != 0 {
		t.Error("DeriveTopics mutated its input")
	}
	if err := out.Validate(); err != nil {
		t.Error(err)
	}
	if _, _, err := DeriveTopics(g, "no-such-type", LDAConfig{Topics: 2}); err == nil {
		t.Error("missing node type accepted")
	}
}

func aprioriTxs() [][]string {
	return [][]string{
		{"beer", "diaper", "milk"},
		{"beer", "diaper"},
		{"beer", "diaper", "bread"},
		{"milk", "bread"},
		{"beer", "milk", "diaper"},
	}
}

func TestApriori(t *testing.T) {
	sets := Apriori(aprioriTxs(), AprioriConfig{MinSupport: 3})
	bySig := map[string]int{}
	for _, s := range sets {
		bySig[strings.Join(s.Items, ",")] = s.Support
	}
	if bySig["beer"] != 4 || bySig["diaper"] != 4 || bySig["milk"] != 3 {
		t.Errorf("L1 supports wrong: %v", bySig)
	}
	if bySig["beer,diaper"] != 4 {
		t.Errorf("support(beer,diaper) = %d, want 4", bySig["beer,diaper"])
	}
	if _, ok := bySig["bread"]; ok {
		t.Error("bread (support 2) should be infrequent at minsup 3")
	}
}

func TestAprioriDownwardClosure(t *testing.T) {
	// Every frequent set's subsets must be frequent (property of Apriori).
	sets := Apriori(aprioriTxs(), AprioriConfig{MinSupport: 2})
	freq := map[string]bool{}
	for _, s := range sets {
		freq[strings.Join(s.Items, ",")] = true
	}
	for _, s := range sets {
		if len(s.Items) < 2 {
			continue
		}
		for drop := range s.Items {
			sub := append(append([]string{}, s.Items[:drop]...), s.Items[drop+1:]...)
			if !freq[strings.Join(sub, ",")] {
				t.Errorf("subset %v of frequent %v is not frequent", sub, s.Items)
			}
		}
	}
}

func TestRules(t *testing.T) {
	sets := Apriori(aprioriTxs(), AprioriConfig{MinSupport: 3})
	rules := Rules(sets, AprioriConfig{MinSupport: 3, MinConfidence: 0.8})
	found := false
	for _, r := range rules {
		if reflect.DeepEqual(r.Antecedent, []string{"beer"}) &&
			reflect.DeepEqual(r.Consequent, []string{"diaper"}) {
			found = true
			if r.Confidence != 1.0 {
				t.Errorf("conf(beer→diaper) = %f, want 1.0", r.Confidence)
			}
		}
		if r.Confidence < 0.8 {
			t.Errorf("rule %v below confidence threshold", r)
		}
	}
	if !found {
		t.Error("missing rule beer→diaper")
	}
	if len(rules) > 0 && rules[0].String() == "" {
		t.Error("rule String empty")
	}
}

func TestTagTransactions(t *testing.T) {
	b := graph.NewBuilder()
	u1 := b.Node([]string{graph.TypeUser})
	u2 := b.Node([]string{graph.TypeUser})
	u3 := b.Node([]string{graph.TypeUser}) // never tags
	i1 := b.Node([]string{graph.TypeItem})
	b.Link(u1, i1, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "a", "tags", "b")
	b.Link(u2, i1, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "c")
	b.Link(u3, i1, []string{graph.TypeAct, graph.SubtypeVisit})
	txs := TagTransactions(b.Graph())
	if len(txs) != 2 {
		t.Fatalf("transactions = %v", txs)
	}
}

func TestProfiles(t *testing.T) {
	b := graph.NewBuilder()
	u1 := b.Node([]string{graph.TypeUser})
	u2 := b.Node([]string{graph.TypeUser})
	i1 := b.Node([]string{graph.TypeItem})
	b.Link(u1, u2, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(u1, i1, []string{graph.TypeAct, graph.SubtypeVisit})
	ps := Profiles(b.Graph())
	if !ps[u1].Network.Has(u2) || !ps[u2].Network.Has(u1) {
		t.Error("connections should register in both directions")
	}
	if !ps[u1].Items.Has(i1) {
		t.Error("act target missing from items")
	}
	if ps[u2].Items.Len() != 0 {
		t.Error("u2 has no items")
	}
}

func TestDeriveMatches(t *testing.T) {
	b := graph.NewBuilder()
	u1 := b.Node([]string{graph.TypeUser})
	u2 := b.Node([]string{graph.TypeUser})
	u3 := b.Node([]string{graph.TypeUser})
	var items []graph.NodeID
	for i := 0; i < 4; i++ {
		items = append(items, b.Node([]string{graph.TypeItem}))
	}
	// u1: {0,1,2}; u2: {0,1,2,3} → J=3/4; u3: {3} → J(u1,u3)=0.
	for _, i := range items[:3] {
		b.Link(u1, i, []string{graph.TypeAct, graph.SubtypeVisit})
	}
	for _, i := range items {
		b.Link(u2, i, []string{graph.TypeAct, graph.SubtypeVisit})
	}
	b.Link(u3, items[3], []string{graph.TypeAct, graph.SubtypeVisit})
	g := b.Graph()
	out := DeriveMatches(g, 0.5)
	matches := out.LinksOfType(graph.TypeMatch)
	if len(matches) != 2 { // u1↔u2 both directions
		t.Fatalf("match links = %d, want 2", len(matches))
	}
	for _, m := range matches {
		if v, _ := m.Attrs.Float("sim"); v != 0.75 {
			t.Errorf("sim = %v, want 0.75", m.Attrs.Get("sim"))
		}
	}
	if g.CountLinks(graph.TypeMatch) != 0 {
		t.Error("DeriveMatches mutated its input")
	}
}

func TestExpertsOn(t *testing.T) {
	b := graph.NewBuilder()
	alexia := b.Node([]string{graph.TypeUser}, "name", "Alexia")
	jane := b.Node([]string{graph.TypeUser}, "name", "Jane")
	casual := b.Node([]string{graph.TypeUser}, "name", "Casual")
	var hist []graph.NodeID
	for i := 0; i < 3; i++ {
		hist = append(hist, b.Node([]string{graph.TypeItem}, "keywords", "american history museum"))
	}
	beach := b.Node([]string{graph.TypeItem}, "keywords", "beach resort")
	for _, h := range hist {
		b.Link(jane, h, []string{graph.TypeAct, graph.SubtypeReview})
	}
	b.Link(casual, hist[0], []string{graph.TypeAct, graph.SubtypeVisit})
	b.Link(casual, beach, []string{graph.TypeAct, graph.SubtypeVisit})
	g := b.Graph()

	experts := ExpertsOn(g, []string{"american", "history"}, 2)
	if len(experts) != 2 || experts[0] != jane || experts[1] != casual {
		t.Errorf("experts = %v, want [Jane Casual]", experts)
	}
	if ExpertsOn(g, nil, 3) != nil {
		t.Error("empty keywords should give nil")
	}
	if ExpertsOn(g, []string{"american", "history"}, 0) != nil {
		t.Error("n=0 should give nil")
	}
	_ = alexia
}

// Property: Apriori support counts are exact — recount every reported
// itemset directly against the transactions.
func TestQuickAprioriSupportExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		universe := []string{"a", "b", "c", "d", "e"}
		txs := make([][]string, 12)
		for i := range txs {
			var tx []string
			for _, it := range universe {
				if rng.Intn(2) == 0 {
					tx = append(tx, it)
				}
			}
			txs[i] = tx
		}
		sets := Apriori(txs, AprioriConfig{MinSupport: 2, MaxLen: 5})
		for _, s := range sets {
			want := 0
			for _, tx := range txs {
				m := map[string]bool{}
				for _, it := range tx {
					m[it] = true
				}
				all := true
				for _, it := range s.Items {
					if !m[it] {
						all = false
						break
					}
				}
				if all {
					want++
				}
			}
			if want != s.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
