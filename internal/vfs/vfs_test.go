package vfs

import (
	"errors"
	"os"
	"testing"
)

func writeAll(t *testing.T, fsys FS, name string, data []byte) {
	t.Helper()
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", name, err)
	}
}

func TestFaultFSDurableAfterSync(t *testing.T) {
	fsys := NewFaultFS(DropUnsynced)
	f, err := fsys.OpenFile("a/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world, this is durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" -- and this is volatile")); err != nil {
		t.Fatal(err)
	}
	fsys.SetCrashAtOp(fsys.Ops()) // next op crashes
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash arm: got %v, want ErrCrashed", err)
	}
	if !fsys.Crashed() {
		t.Fatal("expected crashed state")
	}
	if _, err := ReadFile(fsys, "a/log"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read while crashed: got %v, want ErrCrashed", err)
	}
	fsys.Recover()
	got, err := ReadFile(fsys, "a/log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world, this is durable" {
		t.Fatalf("after DropUnsynced recover: %q", got)
	}
}

func TestFaultFSKeepUnsyncedTearsWrites(t *testing.T) {
	fsys := NewFaultFS(KeepUnsynced)
	fsys.SetWriteChunk(4)
	f, err := fsys.OpenFile("log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-write: the open was op 0, so chunks are ops 1,2,...;
	// allow exactly two 4-byte chunks of the record through.
	fsys.SetCrashAtOp(3)
	n, err := f.Write([]byte("0123456789abcdef"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got n=%d err=%v", n, err)
	}
	if n != 8 {
		t.Fatalf("short write length: got %d, want 8", n)
	}
	fsys.Recover()
	got, err := ReadFile(fsys, "log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234567" {
		t.Fatalf("torn tail content: %q", got)
	}
}

func TestFaultFSDropUnsyncedLosesTornTail(t *testing.T) {
	fsys := NewFaultFS(DropUnsynced)
	fsys.SetWriteChunk(4)
	f, err := fsys.OpenFile("log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("SYNCED..")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fsys.SetCrashAtOp(fsys.Ops() + 1)
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	fsys.Recover()
	got, err := ReadFile(fsys, "log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "SYNCED.." {
		t.Fatalf("after recover: %q", got)
	}
}

func TestFaultFSRenameAtomicAndDurable(t *testing.T) {
	fsys := NewFaultFS(DropUnsynced)
	if err := WriteFileSync(fsys, "manifest.tmp", []byte(`{"seq":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename("manifest.tmp", "MANIFEST"); err != nil {
		t.Fatal(err)
	}
	fsys.SetCrashAtOp(fsys.Ops())
	// Any further op crashes; the rename must have survived durably.
	_ = fsys.Remove("MANIFEST")
	fsys.Recover()
	got, err := ReadFile(fsys, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"seq":1}` {
		t.Fatalf("MANIFEST after crash: %q", got)
	}
	if _, err := fsys.Size("manifest.tmp"); !IsNotExist(err) {
		t.Fatalf("tmp should be gone, got %v", err)
	}
}

func TestFaultFSInjectedSyncError(t *testing.T) {
	fsys := NewFaultFS(DropUnsynced)
	f, err := fsys.OpenFile("log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	fsys.FailSyncAtOp(fsys.Ops())
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if fsys.Crashed() {
		t.Fatal("injected sync error must not crash the fs")
	}
	// The failed sync made nothing durable: a crash now loses the data.
	fsys.SetCrashAtOp(fsys.Ops())
	_, _ = f.Write([]byte("x"))
	fsys.Recover()
	got, err := ReadFile(fsys, "log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "" {
		t.Fatalf("data after failed sync + crash: %q", got)
	}
	// Retry succeeds once disarmed.
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("retry sync: %v", err)
	}
}

func TestFaultFSOpsDeterministic(t *testing.T) {
	run := func() int64 {
		fsys := NewFaultFS(DropUnsynced)
		writeAll(t, fsys, "dir/a", []byte("0123456789012345"))
		writeAll(t, fsys, "dir/b", []byte("x"))
		if err := fsys.Rename("dir/b", "dir/c"); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Remove("dir/c"); err != nil {
			t.Fatal(err)
		}
		return fsys.Ops()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("op counts differ or zero: %d vs %d", a, b)
	}
}

func TestFaultFSReadDir(t *testing.T) {
	fsys := NewFaultFS(DropUnsynced)
	if err := fsys.MkdirAll("w/seg", 0o755); err != nil {
		t.Fatal(err)
	}
	writeAll(t, fsys, "w/seg/b.seg", []byte("b"))
	writeAll(t, fsys, "w/seg/a.seg", []byte("a"))
	names, err := fsys.ReadDir("w/seg")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a.seg" || names[1] != "b.seg" {
		t.Fatalf("ReadDir: %v", names)
	}
	if _, err := fsys.ReadDir("nope"); !IsNotExist(err) {
		t.Fatalf("missing dir: %v", err)
	}
	// Empty but created dir lists fine.
	if names, err := fsys.ReadDir("w"); err != nil || len(names) != 0 {
		t.Fatalf("dir with only subdir: %v %v", names, err)
	}
}

func TestOSImplementsFS(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	if err := fsys.MkdirAll(dir+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileSync(fsys, dir+"/sub/f.txt", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if sz, err := fsys.Size(dir + "/sub/f.txt"); err != nil || sz != 4 {
		t.Fatalf("size: %d %v", sz, err)
	}
	if err := fsys.Truncate(dir+"/sub/f.txt", 2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fsys, dir+"/sub/f.txt")
	if err != nil || string(got) != "da" {
		t.Fatalf("after truncate: %q %v", got, err)
	}
	names, err := fsys.ReadDir(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "f.txt" {
		t.Fatalf("readdir: %v %v", names, err)
	}
	if err := fsys.Rename(dir+"/sub/f.txt", dir+"/sub/g.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(dir + "/sub/g.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Size(dir + "/sub/g.txt"); !IsNotExist(err) {
		t.Fatalf("want not-exist, got %v", err)
	}
}

func TestFaultFSCrashNow(t *testing.T) {
	fsys := NewFaultFS(DropUnsynced)
	f, err := fsys.OpenFile("a/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("synced part")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" volatile part")); err != nil {
		t.Fatal(err)
	}
	fsys.Crash() // kill -9: no op needs to fire
	if !fsys.Crashed() {
		t.Fatal("Crash() did not take the filesystem down")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after Crash: got %v, want ErrCrashed", err)
	}
	fsys.Recover()
	got, err := ReadFile(fsys, "a/log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced part" {
		t.Fatalf("after Crash+Recover under DropUnsynced: %q", got)
	}
}

func TestFaultFSCloneIsIndependent(t *testing.T) {
	fsys := NewFaultFS(DropUnsynced)
	writeAll(t, fsys, "d/base", []byte("shared"))
	f, err := fsys.OpenFile("d/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}

	clone := fsys.Clone()
	if got, want := clone.Ops(), fsys.Ops(); got != want {
		t.Fatalf("clone ops = %d, want %d", got, want)
	}
	// Divergence after the clone stays private to each side.
	writeAll(t, fsys, "d/only-orig", []byte("x"))
	writeAll(t, clone, "d/only-clone", []byte("y"))
	if b := clone.Bytes("d/only-orig"); b != nil {
		t.Fatalf("clone sees post-clone original write: %q", b)
	}
	if b := fsys.Bytes("d/only-clone"); b != nil {
		t.Fatalf("original sees post-clone clone write: %q", b)
	}
	// The clone preserves the synced/volatile split: crashing the clone
	// under DropUnsynced loses exactly the unsynced tail.
	clone.Crash()
	clone.Recover()
	got, err := ReadFile(clone, "d/log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("cloned volatile state survived a DropUnsynced crash: %q", got)
	}
	// The original is untouched by the clone's crash.
	if got := fsys.Bytes("d/log"); string(got) != "durable-volatile" {
		t.Fatalf("original damaged by clone crash: %q", got)
	}
}

func TestFaultFSClonePreservesCrashedState(t *testing.T) {
	fsys := NewFaultFS(KeepUnsynced)
	writeAll(t, fsys, "f", []byte("torn tail stays"))
	fsys.Crash()
	clone := fsys.Clone()
	if !clone.Crashed() {
		t.Fatal("clone of a crashed fs is not crashed")
	}
	clone.Recover()
	if got := clone.Bytes("f"); string(got) != "torn tail stays" {
		t.Fatalf("KeepUnsynced clone lost data: %q", got)
	}
}
