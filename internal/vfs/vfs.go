// Package vfs is the filesystem seam of the durability subsystem. The
// write-ahead log (internal/wal) and the checkpointer (internal/store)
// perform every file operation through the FS interface, so tests can
// substitute a fault-injecting in-memory filesystem (FaultFS) and drive
// the exact failure modes durability exists to survive: crashes at
// arbitrary write boundaries, torn tails, fsync errors and short writes.
//
// Production code uses OS, a thin wrapper over the os package. The
// durability contract the callers rely on:
//
//   - data written to a File is durable only after Sync returns nil;
//   - Rename is atomic: after a crash the name refers to either the old
//     or the new file, never a mix;
//   - metadata operations (create, rename, remove, truncate) are treated
//     as durable when they return — the simplification of a
//     metadata-journaling filesystem. The fsync-ordering that matters
//     (file contents synced before the rename that publishes them) is
//     the caller's responsibility and is what FaultFS verifies.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sort"
)

// File is an open file handle. Reads and writes share one offset, as
// with *os.File.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes all data written so far durable. Data not synced may be
	// lost — in whole or in part — by a crash.
	Sync() error
}

// FS is the set of filesystem operations the durability layer uses.
// Paths use the host separator conventions of the implementation; the
// callers only ever join with filepath.Join and pass the results back.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flag subset
	// O_RDONLY, O_WRONLY, O_RDWR, O_CREATE, O_APPEND, O_TRUNC.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	MkdirAll(dir string, perm fs.FileMode) error
	Remove(name string) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// Size returns the current length of name in bytes.
	Size(name string) (int64, error)
}

// OS is the production FS over the real filesystem.
type OS struct{}

// OpenFile opens a real file.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadDir lists a real directory.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll creates a real directory tree.
func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

// Remove deletes a real file.
func (OS) Remove(name string) error { return os.Remove(name) }

// Rename atomically renames a real file.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Truncate cuts a real file.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Size stats a real file.
func (OS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ReadFile reads the whole of name through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFileSync writes data to name (creating or truncating), syncs it,
// and closes it — the durable counterpart of os.WriteFile.
func WriteFileSync(fsys FS, name string, data []byte, perm fs.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write error is the one the caller needs
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error already condemns the file
		return err
	}
	return f.Close()
}

// IsNotExist reports whether err says the file does not exist, for either
// implementation.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
