package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// Injected fault errors. ErrCrashed is what every operation returns once
// the simulated machine has gone down; ErrInjected is a transient error
// (a failed fsync, a short write) after which the process is assumed to
// keep running.
var (
	ErrCrashed  = errors.New("vfs: simulated crash")
	ErrInjected = errors.New("vfs: injected fault")
)

// LossMode selects what a simulated crash does to data written but not
// yet fsynced. Real crashes land somewhere between the two extremes —
// the page cache flushes lazily and partially — so a recovery protocol
// must survive both bounds.
type LossMode int

const (
	// DropUnsynced loses every byte written since each file's last Sync:
	// the page cache never reached the disk. Exercises ack semantics —
	// anything acknowledged must have been synced.
	DropUnsynced LossMode = iota
	// KeepUnsynced retains every completed write chunk, including a
	// partial chunk sequence cut mid-record: the page cache flushed
	// eagerly and the crash tore the tail. Exercises torn-tail decoding.
	KeepUnsynced
)

// DefaultWriteChunk is the granularity at which FaultFS splits writes:
// every chunk is one fault-schedulable operation, so a crash point can
// land inside a logical record and produce a torn tail.
const DefaultWriteChunk = 7

// FaultFS is an in-memory FS with deterministic fault injection. Every
// mutating operation — a write chunk, a sync, a metadata change — is one
// numbered "op"; SetCrashAtOp arms a crash that fires when the op
// counter reaches the given index, after which all operations fail with
// ErrCrashed until Recover is called. Recover applies the LossMode to
// unsynced data and returns the filesystem to service, modeling the
// reboot the recovery path then runs against.
//
// FaultFS is safe for concurrent use. Determinism holds when the
// workload itself is deterministic (single-goroutine durability path).
type FaultFS struct {
	mu         sync.Mutex
	mode       LossMode
	files      map[string]*memFile
	dirs       map[string]bool
	ops        int64
	crashAt    int64 // fire when ops reaches this index; -1 disarmed
	crashed    bool
	failSyncAt int64 // one-shot transient fsync failure; -1 disarmed
	failAt     int64 // one-shot transient failure of any op; -1 disarmed
	writeChunk int
}

type memFile struct {
	data   []byte // current (possibly volatile) content
	synced []byte // durable image as of the last Sync
}

// NewFaultFS returns an empty in-memory filesystem with the given crash
// loss mode and no faults armed.
func NewFaultFS(mode LossMode) *FaultFS {
	return &FaultFS{
		mode:       mode,
		files:      make(map[string]*memFile),
		dirs:       map[string]bool{".": true, "/": true},
		crashAt:    -1,
		failSyncAt: -1,
		failAt:     -1,
		writeChunk: DefaultWriteChunk,
	}
}

// SetCrashAtOp arms the crash to fire when the op counter reaches n
// (that op and everything after it fails). Negative disarms.
func (f *FaultFS) SetCrashAtOp(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// FailSyncAtOp arms a one-shot transient failure: the operation with
// index n — if it is a Sync — returns ErrInjected without making data
// durable, and the filesystem keeps running. Negative disarms.
func (f *FaultFS) FailSyncAtOp(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncAt = n
}

// FailAtOp arms a one-shot transient failure of the operation with
// index n, whatever it is — a write chunk, a metadata op, a writable
// close: that operation returns ErrInjected and the filesystem keeps
// running. Unlike FailSyncAtOp it does not require the victim to be a
// Sync, so it can hit a mid-loop Remove or a handle Close. Negative
// disarms.
func (f *FaultFS) FailAtOp(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = n
}

// SetWriteChunk overrides the write-splitting granularity (min 1).
func (f *FaultFS) SetWriteChunk(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 1 {
		n = 1
	}
	f.writeChunk = n
}

// Ops returns the operations performed so far — the crash-point space a
// differential harness enumerates.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crash takes the filesystem down immediately, as if an armed crash had
// just fired: every subsequent operation fails with ErrCrashed until
// Recover, which then applies the LossMode to unsynced data. It models
// an externally induced kill -9 — the network-chaos harness uses it to
// fell a leader at a point chosen by the injection schedule rather than
// by the op counter.
func (f *FaultFS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// Clone returns a deep copy of the filesystem's current state — files,
// durable images, op counter — with all faults disarmed and the crash
// flag preserved. A clone taken at the instant a leader dies is the
// "twin disk" a differential harness crash-recovers independently, to
// prove a follower's promotion lands on the exact state the dead
// leader's own recovery would have produced.
func (f *FaultFS) Clone() *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := &FaultFS{
		mode:       f.mode,
		files:      make(map[string]*memFile, len(f.files)),
		dirs:       make(map[string]bool, len(f.dirs)),
		ops:        f.ops,
		crashAt:    -1,
		crashed:    f.crashed,
		failSyncAt: -1,
		failAt:     -1,
		writeChunk: f.writeChunk,
	}
	for name, mf := range f.files {
		c.files[name] = &memFile{
			data:   append([]byte(nil), mf.data...),
			synced: append([]byte(nil), mf.synced...),
		}
	}
	for d, ok := range f.dirs {
		c.dirs[d] = ok
	}
	return c
}

// Crashed reports whether the armed crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Recover models the reboot after a crash: unsynced data is resolved
// per the LossMode, the crash is disarmed, and operations succeed again.
// It is also safe to call without a crash (it then only disarms faults).
func (f *FaultFS) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed && f.mode == DropUnsynced {
		for _, mf := range f.files {
			mf.data = append([]byte(nil), mf.synced...)
		}
	}
	// KeepUnsynced: whatever was written — torn tails included — is what
	// the disk holds. Either way the surviving image is now durable.
	for _, mf := range f.files {
		mf.synced = append([]byte(nil), mf.data...)
	}
	f.crashed = false
	f.crashAt = -1
	f.failSyncAt = -1
	f.failAt = -1
}

// op consumes one fault-schedulable operation. It returns ErrCrashed
// when the filesystem is (or just went) down, and reports whether this
// op was selected for a transient sync failure.
func (f *FaultFS) op() (failSync bool, err error) {
	if f.crashed {
		return false, ErrCrashed
	}
	if f.crashAt >= 0 && f.ops >= f.crashAt {
		f.crashed = true
		return false, ErrCrashed
	}
	failSync = f.failSyncAt >= 0 && f.ops == f.failSyncAt
	fail := f.failAt >= 0 && f.ops == f.failAt
	f.ops++
	if fail {
		return false, ErrInjected
	}
	return failSync, nil
}

func clean(p string) string { return path.Clean(strings.ReplaceAll(p, "\\", "/")) }

// OpenFile implements FS. Creation is a metadata op; opening an existing
// file for read costs nothing.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = clean(name)
	if f.crashed {
		return nil, ErrCrashed
	}
	mf, ok := f.files[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		if _, err := f.op(); err != nil {
			return nil, err
		}
		mf = &memFile{}
		f.files[name] = mf
		f.dirs[path.Dir(name)] = true
	case flag&os.O_TRUNC != 0:
		if _, err := f.op(); err != nil {
			return nil, err
		}
		mf.data = nil
		mf.synced = nil
	}
	return &faultHandle{fs: f, f: mf, writable: flag&(os.O_WRONLY|os.O_RDWR|os.O_APPEND) != 0}, nil
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	dir = clean(dir)
	var names []string
	for p := range f.files {
		if path.Dir(p) == dir {
			names = append(names, path.Base(p))
		}
	}
	if len(names) == 0 && !f.dirs[dir] {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS. Directories are pure metadata here.
func (f *FaultFS) MkdirAll(dir string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	dir = clean(dir)
	for dir != "." && dir != "/" {
		f.dirs[dir] = true
		dir = path.Dir(dir)
	}
	return nil
}

// Remove implements FS as a durable metadata op.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = clean(name)
	if _, err := f.op(); err != nil {
		return err
	}
	if _, ok := f.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(f.files, name)
	return nil
}

// Rename implements FS as an atomic, durable metadata op.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldname, newname = clean(oldname), clean(newname)
	if _, err := f.op(); err != nil {
		return err
	}
	mf, ok := f.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(f.files, oldname)
	f.files[newname] = mf
	f.dirs[path.Dir(newname)] = true
	return nil
}

// Truncate implements FS as a durable metadata+data op.
func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = clean(name)
	if _, err := f.op(); err != nil {
		return err
	}
	mf, ok := f.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	for int64(len(mf.data)) < size {
		mf.data = append(mf.data, 0)
	}
	mf.data = mf.data[:size]
	if int64(len(mf.synced)) > size {
		mf.synced = mf.synced[:size]
	}
	return nil
}

// Size implements FS.
func (f *FaultFS) Size(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	mf, ok := f.files[clean(name)]
	if !ok {
		return 0, &fs.PathError{Op: "stat", Path: clean(name), Err: fs.ErrNotExist}
	}
	return int64(len(mf.data)), nil
}

// Bytes returns a copy of name's current content (test helper).
func (f *FaultFS) Bytes(name string) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	mf, ok := f.files[clean(name)]
	if !ok {
		return nil
	}
	return append([]byte(nil), mf.data...)
}

// faultHandle is an open file on a FaultFS. Writes append (every caller
// in the durability layer is append-only or write-once); reads run from
// their own offset.
type faultHandle struct {
	fs       *FaultFS
	f        *memFile
	off      int64
	writable bool
	closed   bool
}

func (h *faultHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += int64(n)
	return n, nil
}

// Write appends, split into writeChunk-sized fault-schedulable ops, so
// a crash can land inside a logical record.
func (h *faultHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if !h.writable {
		return 0, fs.ErrInvalid
	}
	written := 0
	for written < len(p) {
		end := written + h.fs.writeChunk
		if end > len(p) {
			end = len(p)
		}
		if _, err := h.fs.op(); err != nil {
			return written, err
		}
		h.f.data = append(h.f.data, p[written:end]...)
		written = end
	}
	return written, nil
}

func (h *faultHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	failSync, err := h.fs.op()
	if err != nil {
		return err
	}
	if failSync {
		return ErrInjected
	}
	h.f.synced = append([]byte(nil), h.f.data...)
	return nil
}

// Close of a writable handle is a fault-schedulable operation — real
// filesystems can fail a close (delayed-write errors), and the WAL's
// heal path must surface that instead of truncating under a dirty
// handle. Read-only closes stay free so tailing readers never perturb
// the op schedule a crash harness enumerates.
func (h *faultHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	if !h.writable {
		return nil
	}
	if _, err := h.fs.op(); err != nil {
		return err
	}
	return nil
}
