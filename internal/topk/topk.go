// Package topk implements Fagin-style early-terminating top-k query
// processing over the activity-driven inverted lists of internal/index,
// completing the Section 6.2 pipeline: the index stores per-(cluster, tag)
// posting lists sorted by monotone score upper bounds (Equation 1), and
// this package turns those sorted lists into provably exact top-k answers
// while reading as few postings as possible.
//
// Three strategies are provided:
//
//   - Exhaustive scores every item of the corpus — the ground truth and
//     the baseline every optimization is measured against;
//   - TA is the threshold algorithm: round-robin sorted access over the
//     query's lists, immediate exact rescoring (random access) of every
//     newly seen item, termination once the k-th exact score strictly
//     exceeds the threshold g(frontier bounds);
//   - NRA is the no-random-access flavor: sorted access accumulates
//     per-candidate partial upper bounds and exact rescoring is deferred
//     until a candidate's upper bound still reaches the current k-th
//     score, so items whose bounds decay below the waterline are
//     discarded without ever being rescored.
//
// All three return byte-identical rankings (score descending, item id
// ascending, positive scores only) for any monotone f and g — the
// monotonicity contract documented in internal/scoring is exactly what
// makes the early-termination proofs go through. They differ only in how
// much work they do, which Stats makes observable.
package topk

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/scoring"
)

// ErrUnknownUser reports a query for a user the index's clustering does
// not know. A sentinel (matched with errors.Is) so serving layers can
// map it to a 404 without string inspection.
var ErrUnknownUser = errors.New("topk: unknown user")

// Strategy selects the query-processing algorithm.
type Strategy uint8

const (
	// Exhaustive scores every item (no index access).
	Exhaustive Strategy = iota
	// TA is the threshold algorithm with immediate random access.
	TA
	// NRA defers random access until a candidate's upper bound proves it
	// can still enter the top k.
	NRA
)

func (s Strategy) String() string {
	switch s {
	case Exhaustive:
		return "exhaustive"
	case TA:
		return "ta"
	case NRA:
		return "nra"
	}
	return "unknown"
}

// ParseStrategy maps a name back to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range []Strategy{Exhaustive, TA, NRA} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("topk: unknown strategy %q", name)
}

// Stats reports the work one top-k evaluation performed — the currency in
// which Section 6.2 prices index designs. For Exhaustive, PostingsScanned
// counts the (item, tag) score computations the full scan performs, so the
// three strategies are comparable in one unit.
type Stats struct {
	Strategy        Strategy
	PostingsScanned int  // sorted accesses: postings read across the query's lists
	ExactScores     int  // exact score_k computations (random accesses)
	Candidates      int  // distinct items met during sorted access
	Rounds          int  // round-robin sweeps over the lists
	EarlyTerminated bool // stopped before draining every list
	// SnapshotVersion is the index snapshot the evaluation read: 0 for a
	// fresh build, incremented by every index.ApplyDelta batch. On a live
	// engine it tells which version of the world answered the query.
	SnapshotVersion uint64
}

// Add folds another evaluation's counters into s (for aggregate reports).
// SnapshotVersion keeps the newest version observed.
func (s *Stats) Add(o Stats) {
	s.PostingsScanned += o.PostingsScanned
	s.ExactScores += o.ExactScores
	s.Candidates += o.Candidates
	s.Rounds += o.Rounds
	if o.EarlyTerminated {
		s.EarlyTerminated = true
	}
	if o.SnapshotVersion > s.SnapshotVersion {
		s.SnapshotVersion = o.SnapshotVersion
	}
}

// Processor answers top-k keyword queries against one index. It is
// stateless between calls and safe for concurrent use.
type Processor struct {
	ix *index.Index
	g  scoring.AggregateFn
}

// New builds a processor over the index with aggregate g (nil means the
// paper's g = sum). The per-keyword f is the one the index was built with.
func New(ix *index.Index, g scoring.AggregateFn) (*Processor, error) {
	if ix == nil {
		return nil, fmt.Errorf("topk: nil index")
	}
	if g == nil {
		g = scoring.SumG
	}
	return &Processor{ix: ix, g: g}, nil
}

// Index returns the underlying activity-driven index.
func (p *Processor) Index() *index.Index { return p.ix }

// TopK answers a keyword-only query: the k best items for the user under
// score(i, u) = g(score_k1(i,u), ..., score_kn(i,u)), ties broken by
// ascending item id, items scoring 0 excluded. Every strategy returns the
// identical ranking; they differ only in the Stats.
func (p *Processor) TopK(user graph.NodeID, tags []string, k int,
	strategy Strategy) ([]index.Result, Stats, error) {
	return p.TopKCtx(context.Background(), user, tags, k, strategy)
}

// cancelCheckEvery is how many accumulation-loop iterations pass between
// context checks: frequent enough that a request deadline bounds the scan
// within microseconds, sparse enough that the atomic load disappears
// against the posting work between checks.
const cancelCheckEvery = 256

// TopKCtx is TopK under a context: the accumulation loops of every
// strategy poll ctx and abandon the evaluation with ctx.Err() once it is
// cancelled, so a serving layer's per-request deadline bounds even an
// exhaustive scan over a large corpus. Stats reflect the work actually
// performed up to the abort.
func (p *Processor) TopKCtx(ctx context.Context, user graph.NodeID, tags []string, k int,
	strategy Strategy) ([]index.Result, Stats, error) {
	stats := Stats{Strategy: strategy, SnapshotVersion: p.ix.Version()}
	if k <= 0 {
		return nil, stats, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	if p.ix.Clustering().Of(user) < 0 {
		return nil, stats, fmt.Errorf("%w %d", ErrUnknownUser, user)
	}
	var (
		results []index.Result
		err     error
	)
	switch strategy {
	case Exhaustive:
		results, err = p.exhaustive(ctx, user, tags, k, &stats)
	case TA:
		results, err = p.ta(ctx, user, tags, k, &stats)
	case NRA:
		results, err = p.nra(ctx, user, tags, k, &stats)
	default:
		err = fmt.Errorf("topk: unknown strategy %d", strategy)
	}
	if err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// exhaustive is the full scan: every (item, tag) cell is computed.
func (p *Processor) exhaustive(ctx context.Context, user graph.NodeID, tags []string, k int,
	stats *Stats) ([]index.Result, error) {
	data := p.ix.Data()
	f := p.ix.UserFn()
	results := make([]index.Result, 0, len(data.Items))
	per := make([]float64, len(tags))
	for n, item := range data.Items {
		if n%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for i, tag := range tags {
			per[i] = data.ScoreTag(item, user, tag, f)
			stats.PostingsScanned++
			stats.ExactScores++
		}
		stats.Candidates++
		if s := p.g(per); s > 0 {
			results = append(results, index.Result{Item: item, Score: s})
		}
	}
	sortResults(results)
	if k < len(results) {
		results = results[:k]
	}
	return results, nil
}

// ta runs the threshold algorithm: sorted round-robin access, immediate
// exact rescoring of each item on first sight, and termination once the
// k-th exact score strictly exceeds the threshold assembled from the list
// frontiers. The strict comparison matters: at equality an unseen item
// could still tie the k-th score and win the ascending-id tie-break.
// index.(*Index).TopK is the single-shot sibling of this loop (kept there
// because index cannot import this package); changes to the termination
// rule must be mirrored in both.
func (p *Processor) ta(ctx context.Context, user graph.NodeID, tags []string, k int,
	stats *Stats) ([]index.Result, error) {
	data := p.ix.Data()
	f := p.ix.UserFn()
	lists := make([][]index.Entry, len(tags))
	pos := make([]int, len(tags))
	for i, tag := range tags {
		lists[i] = p.ix.List(user, tag)
	}
	seen := make(map[graph.NodeID]struct{})
	frontiers := make([]float64, len(tags))
	var results []index.Result
	for {
		if stats.Rounds%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		advanced := false
		stats.Rounds++
		for i := range lists {
			if pos[i] >= len(lists[i]) {
				continue
			}
			e := lists[i][pos[i]]
			pos[i]++
			stats.PostingsScanned++
			advanced = true
			if _, dup := seen[e.Item]; dup {
				continue
			}
			seen[e.Item] = struct{}{}
			stats.Candidates++
			per := make([]float64, len(tags))
			for j, tag := range tags {
				per[j] = data.ScoreTag(e.Item, user, tag, f)
				stats.ExactScores++
			}
			if s := p.g(per); s > 0 {
				results = append(results, index.Result{Item: e.Item, Score: s})
			}
		}
		if !advanced {
			break
		}
		// Threshold: the best possible score of any item never seen yet.
		for i := range lists {
			if pos[i] < len(lists[i]) {
				frontiers[i] = lists[i][pos[i]].Score
			} else {
				frontiers[i] = 0
			}
		}
		if len(results) >= k {
			sortResults(results)
			// Bound the buffer: exact scores are final, so anything ranked
			// below 4k can never re-enter the top k.
			if len(results) > 4*k {
				results = results[:4*k]
			}
			if results[k-1].Score > p.g(frontiers) {
				stats.EarlyTerminated = anyRemaining(lists, pos)
				break
			}
		}
	}
	sortResults(results)
	if k < len(results) {
		results = results[:k]
	}
	return results, nil
}

// candidate is NRA bookkeeping for one item met during sorted access.
type candidate struct {
	item graph.NodeID
	// stored[i] is the upper bound read from list i, or -1 while unseen
	// there (the frontier substitutes during bound computation).
	stored []float64
	scored bool
}

// upperBound is the best score the candidate can still achieve: g over the
// stored bounds where seen and the list frontiers where not. Monotone f
// guarantees the stored value bounds the user's exact per-tag score; sorted
// lists guarantee the frontier bounds anything not yet read.
func (c *candidate) upperBound(g scoring.AggregateFn, frontiers []float64) float64 {
	per := make([]float64, len(c.stored))
	for i, s := range c.stored {
		if s >= 0 {
			per[i] = s
		} else {
			per[i] = frontiers[i]
		}
	}
	return g(per)
}

// nra runs the no-random-access flavor: sorted access only accumulates
// candidates and their partial upper bounds; exact rescoring is deferred
// and performed — in decreasing-bound order — only while some unscored
// candidate's upper bound still reaches the current k-th exact score.
// Candidates whose bounds decay below the waterline are discarded without
// a single random access, which is where NRA beats TA on rescoring work.
func (p *Processor) nra(ctx context.Context, user graph.NodeID, tags []string, k int,
	stats *Stats) ([]index.Result, error) {
	data := p.ix.Data()
	f := p.ix.UserFn()
	lists := make([][]index.Entry, len(tags))
	pos := make([]int, len(tags))
	for i, tag := range tags {
		lists[i] = p.ix.List(user, tag)
	}
	cands := make(map[graph.NodeID]*candidate)
	frontiers := make([]float64, len(tags))
	var results []index.Result

	rescore := func(c *candidate) {
		c.scored = true
		per := make([]float64, len(tags))
		for j, tag := range tags {
			per[j] = data.ScoreTag(c.item, user, tag, f)
			stats.ExactScores++
		}
		if s := p.g(per); s > 0 {
			results = append(results, index.Result{Item: c.item, Score: s})
		}
	}
	// bestUnscored picks the unscored candidate with the highest upper
	// bound, smallest item id on ties, so the rescoring order — and with
	// it the Stats — is deterministic.
	bestUnscored := func() (*candidate, float64) {
		var best *candidate
		bestUB := 0.0
		for _, c := range cands {
			if c.scored {
				continue
			}
			ub := c.upperBound(p.g, frontiers)
			if ub <= 0 {
				continue
			}
			if best == nil || ub > bestUB || (ub == bestUB && c.item < best.item) {
				best, bestUB = c, ub
			}
		}
		return best, bestUB
	}

	for {
		if stats.Rounds%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		advanced := false
		stats.Rounds++
		for i := range lists {
			if pos[i] >= len(lists[i]) {
				continue
			}
			e := lists[i][pos[i]]
			pos[i]++
			stats.PostingsScanned++
			advanced = true
			c, ok := cands[e.Item]
			if !ok {
				c = &candidate{item: e.Item, stored: make([]float64, len(tags))}
				for j := range c.stored {
					c.stored[j] = -1
				}
				cands[e.Item] = c
				stats.Candidates++
			}
			c.stored[i] = e.Score
		}
		for i := range lists {
			if pos[i] < len(lists[i]) {
				frontiers[i] = lists[i][pos[i]].Score
			} else {
				frontiers[i] = 0
			}
		}
		// Deferred random access, phase 1: keep just enough exact scores to
		// know a k-th score at all. Everything else stays a candidate.
		for len(results) < k {
			c, _ := bestUnscored()
			if c == nil {
				break
			}
			rescore(c)
		}
		// Phase 2: once the k-th exact score strictly beats the frontier
		// threshold, no fully-unseen item matters; drain the deferred
		// candidates that could still displace — or tie, winning the
		// ascending-id tie-break against — the current top k, and stop.
		// Candidates whose bounds decayed below the waterline are dropped
		// here without ever being rescored. Rescoring only raises the k-th
		// score, so the termination condition cannot be invalidated.
		if len(results) >= k {
			sortResults(results)
			kth := results[k-1].Score
			if kth > p.g(frontiers) {
				for {
					c, ub := bestUnscored()
					if c == nil || ub < kth {
						break
					}
					rescore(c)
					sortResults(results)
					kth = results[k-1].Score
				}
				stats.EarlyTerminated = anyRemaining(lists, pos)
				break
			}
		}
		if !advanced {
			// Lists drained without early termination — only possible with
			// fewer than k positive results, and phase 1 has then already
			// resolved every viable candidate.
			break
		}
	}
	sortResults(results)
	if k < len(results) {
		results = results[:k]
	}
	return results, nil
}

func anyRemaining(lists [][]index.Entry, pos []int) bool {
	for i := range lists {
		if pos[i] < len(lists[i]) {
			return true
		}
	}
	return false
}

func sortResults(rs []index.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Item < rs[j].Item
	})
}
