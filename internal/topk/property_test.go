package topk

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/workload"
)

// assertStrategiesAgree evaluates the same queries under all three
// strategies and fails on any ranking divergence — the byte-identical
// contract the package doc promises for monotone f and g.
func assertStrategiesAgree(t *testing.T, proc *Processor, users []graph.NodeID,
	tags []string, k int, ctx string) {
	t.Helper()
	for _, u := range users {
		want, _, err := proc.TopK(u, tags, k, Exhaustive)
		if err != nil {
			t.Fatalf("%s: exhaustive user %d: %v", ctx, u, err)
		}
		for _, strat := range []Strategy{TA, NRA} {
			got, st, err := proc.TopK(u, tags, k, strat)
			if err != nil {
				t.Fatalf("%s: %s user %d: %v", ctx, strat, u, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: %s user %d k=%d diverges from exhaustive\n got %v\nwant %v",
					ctx, strat, u, k, got, want)
			}
			if st.SnapshotVersion != proc.Index().Version() {
				t.Fatalf("%s: %s stats report snapshot %d, index is at %d",
					ctx, strat, st.SnapshotVersion, proc.Index().Version())
			}
		}
	}
}

// assertListsSorted walks every posting list and fails unless it is in
// strictly maintained order: descending score, ascending item id on ties,
// positive scores only — the invariant both Build and ApplyDelta promise.
func assertListsSorted(t *testing.T, ix *index.Index, ctx string) {
	t.Helper()
	ix.ForEachList(func(cl int, tag string, l []index.Entry) {
		for i, e := range l {
			if e.Score <= 0 {
				t.Fatalf("%s: list (%d,%q) stores non-positive score %+v", ctx, cl, tag, e)
			}
			if i == 0 {
				continue
			}
			prev := l[i-1]
			if prev.Score < e.Score || (prev.Score == e.Score && prev.Item >= e.Item) {
				t.Fatalf("%s: list (%d,%q) out of order at %d: %+v before %+v",
					ctx, cl, tag, i, prev, e)
			}
		}
	})
}

// TestStrategiesAgreeOnRandomCorpora is the property suite the ISSUE
// demands: across 200+ seeded random corpora — rotating clustering
// strategies and k — TA, NRA and Exhaustive return identical rankings.
func TestStrategiesAgreeOnRandomCorpora(t *testing.T) {
	const corpora = 216
	clusterings := []struct {
		s     cluster.Strategy
		theta float64
	}{
		{cluster.PerUser, 0},
		{cluster.Global, 0},
		{cluster.NetworkBased, 0.3},
		{cluster.BehaviorBased, 0.4},
	}
	for seed := 0; seed < corpora; seed++ {
		w, err := workload.Tagging(workload.TaggingConfig{
			Users: 10 + seed%7, Items: 16 + seed%9, Tags: 3 + seed%4,
			Seed: int64(seed), TagsPerUser: 4 + seed%6,
		})
		if err != nil {
			t.Fatal(err)
		}
		cc := clusterings[seed%len(clusterings)]
		cl, err := cluster.Build(w.Graph, cc.s, cc.theta)
		if err != nil {
			t.Fatal(err)
		}
		data := index.Extract(w.Graph)
		ix, err := index.Build(data, cl, nil)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := New(ix, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx := fmt.Sprintf("corpus %d (%s)", seed, cc.s)
		assertListsSorted(t, ix, ctx)
		users := data.Users
		if len(users) > 3 {
			users = users[:3]
		}
		tags := data.Tags
		if len(tags) > 2 {
			tags = tags[:2]
		}
		k := 1 + seed%7
		assertStrategiesAgree(t, proc, users, tags, k, ctx)
	}
}

// TestStrategiesAgreeAfterDeltas streams random mutations through
// ApplyDelta and re-checks both properties after every batch: every
// posting list stays sorted descending, and the three strategies keep
// returning identical rankings on the maintained snapshot.
func TestStrategiesAgreeAfterDeltas(t *testing.T) {
	w, err := workload.Tagging(workload.TaggingConfig{
		Users: 25, Items: 40, Tags: 6, Seed: 19, TagsPerUser: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Build(w.Graph, cluster.NetworkBased, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	data := index.Extract(w.Graph)
	ix, err := index.Build(data, cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	nextLink := w.Graph.MaxLinkID()
	var added []*graph.Link

	randMut := func() graph.Mutation {
		users := ix.Data().Users
		items := ix.Data().Items
		tags := ix.Data().Tags
		switch p := rng.Float64(); {
		case p < 0.5: // new tagging
			nextLink++
			l := graph.NewLink(nextLink, users[rng.Intn(len(users))],
				items[rng.Intn(len(items))], graph.TypeAct, graph.SubtypeTag)
			l.Attrs.Add("tags", tags[rng.Intn(len(tags))])
			added = append(added, l)
			return graph.Mutation{Kind: graph.MutAddLink, Link: l}
		case p < 0.75: // new connection
			nextLink++
			l := graph.NewLink(nextLink, users[rng.Intn(len(users))],
				users[rng.Intn(len(users))], graph.TypeConnect)
			added = append(added, l)
			return graph.Mutation{Kind: graph.MutAddLink, Link: l}
		case len(added) > 0: // retract one of ours
			i := rng.Intn(len(added))
			l := added[i]
			added = append(added[:i], added[i+1:]...)
			return graph.Mutation{Kind: graph.MutRemoveLink, Link: l.Clone()}
		default:
			nextLink++
			l := graph.NewLink(nextLink, users[rng.Intn(len(users))],
				items[rng.Intn(len(items))], graph.TypeAct, graph.SubtypeTag)
			l.Attrs.Add("tags", tags[rng.Intn(len(tags))])
			added = append(added, l)
			return graph.Mutation{Kind: graph.MutAddLink, Link: l}
		}
	}

	const batches = 24
	for b := 0; b < batches; b++ {
		muts := make([]graph.Mutation, 6)
		for i := range muts {
			muts[i] = randMut()
		}
		ix = ix.ApplyDelta(muts)
		proc, err := New(ix, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx := fmt.Sprintf("batch %d (version %d)", b, ix.Version())
		assertListsSorted(t, ix, ctx)
		users := ix.Data().Users[:3]
		tags := ix.Data().Tags
		if len(tags) > 2 {
			tags = tags[:2]
		}
		assertStrategiesAgree(t, proc, users, tags, 5, ctx)
	}
	if ix.Version() != batches {
		t.Errorf("index version %d, want %d", ix.Version(), batches)
	}
}
