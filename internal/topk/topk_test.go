package topk

import (
	"fmt"
	"reflect"
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/scoring"
	"socialscope/internal/workload"
)

// corpora returns the graphs the equivalence suite runs over: the tagging
// workload (the Section 6.2 study's substrate), the travel workload
// (category tags over destinations) and a bare small-world network with
// hand-planted taggings — together the travel and network workloads the
// acceptance bar names.
func corpora(t *testing.T) map[string]struct {
	g    *graph.Graph
	tags []string
} {
	t.Helper()
	out := make(map[string]struct {
		g    *graph.Graph
		tags []string
	})

	tagging, err := workload.Tagging(workload.TaggingConfig{
		Users: 60, Items: 120, Tags: 8, Seed: 7, TagsPerUser: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["tagging"] = struct {
		g    *graph.Graph
		tags []string
	}{tagging.Graph, tagging.Tags[:3]}

	travel, err := workload.Travel(workload.TravelConfig{
		Users: 80, Destinations: 40, Seed: 11, VisitsPerUser: 8, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["travel"] = struct {
		g    *graph.Graph
		tags []string
	}{travel.Graph, workload.Categories[:3]}

	b := graph.NewBuilder()
	users, err := workload.SmallWorld(b, workload.SmallWorldConfig{
		Users: 40, K: 4, Rewire: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]graph.NodeID, 10)
	for i := range items {
		items[i] = b.Node([]string{graph.TypeItem}, "name", fmt.Sprintf("it-%d", i))
	}
	netTags := []string{"jazz", "blues"}
	for ui, u := range users {
		b.Link(u, items[ui%len(items)], []string{graph.TypeAct, graph.SubtypeTag},
			"tags", netTags[ui%len(netTags)])
	}
	out["network"] = struct {
		g    *graph.Graph
		tags []string
	}{b.Graph(), netTags}
	return out
}

func buildProc(t *testing.T, g *graph.Graph, s cluster.Strategy, theta float64) *Processor {
	t.Helper()
	cl, err := cluster.Build(g, s, theta)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(index.Extract(g), cl, scoring.CountF)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(ix, scoring.SumG)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStrategiesMatchExhaustive is the acceptance bar: on every corpus and
// clustering, TA and NRA return byte-identical top-k lists to the
// exhaustive scorer for every user.
func TestStrategiesMatchExhaustive(t *testing.T) {
	for name, c := range corpora(t) {
		for _, cs := range []cluster.Strategy{cluster.PerUser, cluster.NetworkBased,
			cluster.BehaviorBased, cluster.Global} {
			p := buildProc(t, c.g, cs, 0.3)
			for _, u := range p.Index().Data().Users {
				want, _, err := p.TopK(u, c.tags, 5, Exhaustive)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range []Strategy{TA, NRA} {
					got, _, err := p.TopK(u, c.tags, 5, s)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("%s/%s/%s user %d: got %v, want %v",
							name, cs, s, u, got, want)
					}
				}
			}
		}
	}
}

// TestEarlyTerminationSavesWork asserts the point of the whole package: on
// the default tagging workload TA and NRA scan fewer postings than the
// exhaustive scan, and NRA performs no more random accesses than TA.
func TestEarlyTerminationSavesWork(t *testing.T) {
	tagging, err := workload.Tagging(workload.TaggingConfig{
		Users: 80, Items: 200, Tags: 10, Seed: 5, TagsPerUser: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := buildProc(t, tagging.Graph, cluster.PerUser, 0)
	tags := tagging.Tags[:3]
	var ex, ta, nra Stats
	var terminated int
	for _, u := range p.Index().Data().Users {
		_, s0, err := p.TopK(u, tags, 10, Exhaustive)
		if err != nil {
			t.Fatal(err)
		}
		_, s1, err := p.TopK(u, tags, 10, TA)
		if err != nil {
			t.Fatal(err)
		}
		_, s2, err := p.TopK(u, tags, 10, NRA)
		if err != nil {
			t.Fatal(err)
		}
		ex.Add(s0)
		ta.Add(s1)
		nra.Add(s2)
		if s1.EarlyTerminated {
			terminated++
		}
	}
	if ta.PostingsScanned >= ex.PostingsScanned {
		t.Errorf("TA scanned %d postings, exhaustive %d — no savings",
			ta.PostingsScanned, ex.PostingsScanned)
	}
	if nra.PostingsScanned >= ex.PostingsScanned {
		t.Errorf("NRA scanned %d postings, exhaustive %d — no savings",
			nra.PostingsScanned, ex.PostingsScanned)
	}
	if nra.ExactScores > ta.ExactScores {
		t.Errorf("NRA rescored %d items, TA %d — deferral should never cost more",
			nra.ExactScores, ta.ExactScores)
	}
	if terminated == 0 {
		t.Error("TA never terminated early on the default workload")
	}
}

func TestStatsComparableAcrossStrategies(t *testing.T) {
	tagging, err := workload.Tagging(workload.TaggingConfig{
		Users: 30, Items: 60, Tags: 5, Seed: 2, TagsPerUser: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := buildProc(t, tagging.Graph, cluster.PerUser, 0)
	u := p.Index().Data().Users[0]
	_, s, err := p.TopK(u, tagging.Tags[:2], 5, Exhaustive)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(p.Index().Data().Items) * 2
	if s.PostingsScanned != wantCells || s.ExactScores != wantCells {
		t.Errorf("exhaustive stats = %+v, want %d cells", s, wantCells)
	}
	if s.EarlyTerminated {
		t.Error("exhaustive cannot terminate early")
	}
}

func TestErrors(t *testing.T) {
	tagging, err := workload.Tagging(workload.TaggingConfig{
		Users: 10, Items: 10, Tags: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := buildProc(t, tagging.Graph, cluster.PerUser, 0)
	u := p.Index().Data().Users[0]
	if _, _, err := p.TopK(u, tagging.Tags, 0, TA); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := p.TopK(graph.NodeID(1<<40), tagging.Tags, 3, TA); err == nil {
		t.Error("unknown user accepted")
	}
	if _, _, err := p.TopK(u, tagging.Tags, 3, Strategy(99)); err == nil {
		t.Error("bogus strategy accepted")
	}
	if _, err := New(nil, nil); err == nil {
		t.Error("nil index accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{Exhaustive, TA, NRA} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy parsed")
	}
	if Strategy(99).String() != "unknown" {
		t.Error("unknown String misrendered")
	}
}
