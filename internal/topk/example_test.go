package topk_test

import (
	"fmt"

	"socialscope/internal/cluster"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/scoring"
	"socialscope/internal/topk"
)

// exampleGraph is the shared fixture: four friends, three items, two tags.
// For user 1 (network {2, 3}): score_go(11) = 2, score_go(12) = 1,
// score_db(12) = 1 — so for query {go, db}, items 11 and 12 tie at 2 and
// the ascending-id tie-break ranks 11 first.
func exampleGraph() *graph.Graph {
	b := graph.NewBuilder()
	for i := 1; i <= 4; i++ {
		b.NodeWithID(graph.NodeID(i), []string{graph.TypeUser})
	}
	for i := 11; i <= 13; i++ {
		b.NodeWithID(graph.NodeID(i), []string{graph.TypeItem})
	}
	b.Link(1, 2, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(1, 3, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(2, 3, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(3, 4, []string{graph.TypeConnect, graph.SubtypeFriend})
	b.Link(2, 11, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "go")
	b.Link(3, 11, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "go")
	b.Link(3, 12, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "go", "tags", "db")
	b.Link(4, 13, []string{graph.TypeAct, graph.SubtypeTag}, "tags", "db")
	return b.Graph()
}

// ExampleNew wires an activity-driven index into a top-k processor.
func ExampleNew() {
	g := exampleGraph()
	clustering, err := cluster.Build(g, cluster.PerUser, 0)
	if err != nil {
		panic(err)
	}
	ix, err := index.Build(index.Extract(g), clustering, scoring.CountF)
	if err != nil {
		panic(err)
	}
	p, err := topk.New(ix, scoring.SumG)
	if err != nil {
		panic(err)
	}
	fmt.Println("index entries:", p.Index().EntryCount())
	// Output:
	// index entries: 11
}

// ExampleProcessor_TopK answers the same query with all three strategies;
// the rankings are identical, only the work differs.
func ExampleProcessor_TopK() {
	g := exampleGraph()
	clustering, err := cluster.Build(g, cluster.PerUser, 0)
	if err != nil {
		panic(err)
	}
	ix, err := index.Build(index.Extract(g), clustering, scoring.CountF)
	if err != nil {
		panic(err)
	}
	p, err := topk.New(ix, scoring.SumG)
	if err != nil {
		panic(err)
	}
	for _, s := range []topk.Strategy{topk.Exhaustive, topk.TA, topk.NRA} {
		results, stats, err := p.TopK(1, []string{"go", "db"}, 2, s)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s:", s)
		for _, r := range results {
			fmt.Printf(" item=%d score=%.0f", r.Item, r.Score)
		}
		fmt.Printf(" (postings=%d rescores=%d)\n", stats.PostingsScanned, stats.ExactScores)
	}
	// Output:
	// exhaustive: item=11 score=2 item=12 score=2 (postings=6 rescores=6)
	// ta: item=11 score=2 item=12 score=2 (postings=2 rescores=4)
	// nra: item=11 score=2 item=12 score=2 (postings=2 rescores=4)
}
