package topk

import (
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/index"
	"socialscope/internal/scoring"
	"socialscope/internal/workload"
)

// benchSetup builds the default tagging workload once per benchmark.
func benchSetup(b *testing.B) (*Processor, []string) {
	b.Helper()
	tagging, err := workload.Tagging(workload.TaggingConfig{
		Users: 120, Items: 300, Tags: 12, Seed: 42, TagsPerUser: 15,
	})
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.Build(tagging.Graph, cluster.PerUser, 0)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := index.Build(index.Extract(tagging.Graph), cl, scoring.CountF)
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(ix, scoring.SumG)
	if err != nil {
		b.Fatal(err)
	}
	return p, tagging.Tags[:3]
}

// BenchmarkSearch runs each strategy over the default tagging workload and
// reports postings scanned and exact rescores per query alongside wall
// time — the comparison docs/benchmark.md documents.
func BenchmarkSearch(b *testing.B) {
	for _, s := range []Strategy{Exhaustive, TA, NRA} {
		b.Run(s.String(), func(b *testing.B) {
			p, tags := benchSetup(b)
			users := p.Index().Data().Users
			var agg Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := p.TopK(users[i%len(users)], tags, 10, s)
				if err != nil {
					b.Fatal(err)
				}
				agg.Add(st)
			}
			b.ReportMetric(float64(agg.PostingsScanned)/float64(b.N), "postings/op")
			b.ReportMetric(float64(agg.ExactScores)/float64(b.N), "rescores/op")
		})
	}
}

func BenchmarkParallelIndexBuild(b *testing.B) {
	tagging, err := workload.Tagging(workload.TaggingConfig{
		Users: 120, Items: 300, Tags: 12, Seed: 42, TagsPerUser: 15,
	})
	if err != nil {
		b.Fatal(err)
	}
	data := index.Extract(tagging.Graph)
	cl, err := cluster.Build(tagging.Graph, cluster.PerUser, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"pool", 0}} {
		b.Run(w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := index.BuildWithWorkers(data, cl, scoring.CountF, w.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
