package topk

import (
	"context"
	"errors"
	"testing"

	"socialscope/internal/cluster"
	"socialscope/internal/index"
	"socialscope/internal/scoring"
	"socialscope/internal/workload"
)

// TestTopKCtxCancellation verifies every strategy's accumulation loop
// honors an expired context instead of scanning to completion.
func TestTopKCtxCancellation(t *testing.T) {
	corpus, err := workload.Tagging(workload.TaggingConfig{
		Users: 40, Items: 60, Tags: 8, Seed: 9, TagsPerUser: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := index.Extract(corpus.Graph)
	cl, err := cluster.Build(corpus.Graph, cluster.PerUser, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(data, cl, scoring.CountF)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := New(ix, scoring.SumG)
	if err != nil {
		t.Fatal(err)
	}
	tags := data.Tags[:3]
	user := data.Users[0]

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []Strategy{Exhaustive, TA, NRA} {
		if _, _, err := proc.TopKCtx(cancelled, user, tags, 10, strat); !errors.Is(err, context.Canceled) {
			t.Errorf("%s under a cancelled context: err = %v, want context.Canceled", strat, err)
		}
		// And a live context changes nothing.
		want, _, err := proc.TopK(user, tags, 10, strat)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := proc.TopKCtx(context.Background(), user, tags, 10, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: ctx variant returned %d results, plain %d", strat, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: result %d differs: %+v vs %+v", strat, i, got[i], want[i])
			}
		}
	}
}
