package closeerr_test

import (
	"testing"

	"socialscope/internal/analysis/analysistest"
	"socialscope/internal/analysis/closeerr"
)

func TestCloseErr(t *testing.T) {
	analysistest.Run(t, "testdata", closeerr.Analyzer, "example/files")
}
