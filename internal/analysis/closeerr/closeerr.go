// Package closeerr flags unchecked Close/Sync results on writable
// files — the heal bug class from PR 7, where a WAL segment's Close
// error was dropped and a short write could masquerade as a healed
// log. On a writable file the Close (and any Sync) return value IS the
// write result: buffered bytes reach the kernel at close, so ignoring
// it acknowledges data the disk may never have seen.
//
// The read-side idiom stays legal: `defer f.Close()` on a file opened
// read-only loses nothing — reads already reported their errors — so
// files from os.Open (and OpenFile with O_RDONLY) are allowlisted.
// Writable tracking is conservative: OpenFile with a flag expression
// the analyzer cannot prove read-only counts as writable, and an
// explicit `_ = f.Close()` is the documented way to say "discard is
// intended" on error-path cleanup.
package closeerr

import (
	"go/ast"

	"socialscope/internal/analysis"
)

// Analyzer is the closeerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "closeerr",
	Doc:  "Close/Sync on writable files must be checked (or explicitly discarded with _ =)",
	Run:  run,
}

// writeFlags are flag idents that make an OpenFile writable.
var writeFlags = map[string]bool{
	"O_WRONLY": true, "O_RDWR": true, "O_APPEND": true,
	"O_CREATE": true, "O_TRUNC": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc runs over one declaration's whole body, nested literals
// included: closures share the open-file variables of their enclosing
// function, so one table per declaration is the right scope.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// First pass: map variable name -> writable? for vars assigned from
	// open-like calls.
	writable := map[string]bool{} // name -> true (writable) / false (read-only)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, isOpen := openKind(call)
		if !isOpen {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			writable[id.Name] = kind
		}
		return true
	})
	if len(writable) == 0 {
		return
	}

	// Second pass: unchecked Close/Sync on the tracked writables.
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch s := n.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call, deferred = s.Call, true
		}
		if call == nil {
			return true
		}
		x, name, ok := analysis.Callee(call)
		if !ok || (name != "Close" && name != "Sync") {
			return true
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		w, tracked := writable[id.Name]
		if !tracked {
			return true
		}
		if !w {
			return true // read-only: defer f.Close() and bare f.Close() lose nothing
		}
		if deferred {
			pass.Reportf(call.Pos(),
				"defer %s.%s() on a writable file discards the error that reports lost writes — close explicitly and check, or defer a checked closure", id.Name, name)
		} else {
			pass.Reportf(call.Pos(),
				"%s.%s() on a writable file: the result is the write's fate — check it, or discard explicitly with _ =", id.Name, name)
		}
		return true
	})
}

// openKind classifies call as an open-like call: (writable, true) /
// (read-only, true) / (_, false).
func openKind(call *ast.CallExpr) (writable, isOpen bool) {
	_, name, ok := analysis.Callee(call)
	if !ok {
		return false, false
	}
	switch name {
	case "Create":
		// os.Create / fsys.Create: write-mode by definition.
		return true, true
	case "Open":
		// os.Open and zip/archive-style Open are read-only by contract.
		return false, true
	case "OpenFile":
		if len(call.Args) < 2 {
			return true, true
		}
		return flagsWritable(call.Args[1]), true
	}
	return false, false
}

// flagsWritable decides writability from the flag expression: any
// write flag makes it writable; a provably flag-only read expression
// (O_RDONLY alone) is read-only; anything opaque (a variable, a call)
// is conservatively writable.
func flagsWritable(flags ast.Expr) bool {
	sawWrite := false
	opaque := false
	var scan func(e ast.Expr)
	scan = func(e ast.Expr) {
		switch v := e.(type) {
		case *ast.BinaryExpr:
			scan(v.X)
			scan(v.Y)
		case *ast.ParenExpr:
			scan(v.X)
		case *ast.Ident:
			if writeFlags[v.Name] {
				sawWrite = true
			} else if v.Name != "O_RDONLY" {
				opaque = true
			}
		case *ast.SelectorExpr:
			if writeFlags[v.Sel.Name] {
				sawWrite = true
			} else if v.Sel.Name != "O_RDONLY" {
				opaque = true
			}
		case *ast.BasicLit:
			if v.Value != "0" {
				opaque = true
			}
		default:
			opaque = true
		}
	}
	scan(flags)
	return sawWrite || opaque
}
