// Golden file for closeerr: writable Close/Sync results are the
// write's fate; the read-only defer idiom is allowlisted.
package files

import "os"

type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (*os.File, error)
}

// snapshotBad is the heal bug class: the tmp file's Close error — the
// moment buffered bytes hit the kernel — is dropped twice.
func snapshotBad(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f\.Close\(\) on a writable file discards the error`
	if _, err := f.Write([]byte("state")); err != nil {
		return err
	}
	f.Sync() // want `f\.Sync\(\) on a writable file`
	return nil
}

// snapshotGood checks every write-side result and uses the explicit
// discard on the error path, where the first error already won.
func snapshotGood(fsys FS, path string) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("state")); err != nil {
		_ = f.Close() // clean: explicit discard on the error path
		return err
	}
	if err := f.Sync(); err != nil { // clean: checked
		_ = f.Close()
		return err
	}
	return f.Close() // clean: returned
}

// readPath is the allowlisted idiom: a read-only file's Close loses
// nothing.
func readPath(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // clean: read-only allowlist
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

// readOnlyOpenFile: O_RDONLY alone is provably read-only.
func readOnlyOpenFile(fsys FS, path string) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close() // clean: flags prove read-only
	return nil
}

// opaqueFlags: a flag variable cannot be proven read-only, so the file
// counts as writable.
func opaqueFlags(fsys FS, path string, flags int) error {
	f, err := fsys.OpenFile(path, flags, 0o644)
	if err != nil {
		return err
	}
	f.Close() // want `f\.Close\(\) on a writable file`
	return nil
}

// appendLog: O_APPEND is a write mode even without O_WRONLY spelled
// first.
func appendLog(fsys FS, path string) error {
	w, err := fsys.OpenFile(path, os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer w.Close() // want `defer w\.Close\(\) on a writable file discards the error`
	_, err = w.Write([]byte("rec"))
	return err
}

// suppressed: the reviewed-exception escape hatch still works here.
func suppressed(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//sslint:ignore closeerr scratch file, contents never read back
	defer f.Close()
	return nil
}
