// Golden file: packages outside internal/obs may import whatever the
// module policy allows — the analyzer is scoped, not global.
package serve

import (
	"net/http"

	"github.com/some/external/dep"

	"socialscope/internal/obs"
)

func Handler() http.Handler { return obs.Handler() }

var _ = dep.New
