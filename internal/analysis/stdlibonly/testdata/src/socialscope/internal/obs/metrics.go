// Golden file: internal/obs is the stdlib-only scope — standard
// library imports pass, external modules and module-internal imports
// are diagnosed.
package obs

import (
	"net/http"
	"sync/atomic"

	"github.com/prometheus/client_golang/prometheus" // want `external dependency "github\.com/prometheus/client_golang/prometheus"`

	"socialscope/internal/graph" // want `internal import "socialscope/internal/graph"`
)

type Counter struct{ v atomic.Uint64 }

func (c *Counter) Inc() { c.v.Add(1) }

func Handler() http.Handler {
	_ = prometheus.NewRegistry
	var _ graph.NodeID
	return nil
}
