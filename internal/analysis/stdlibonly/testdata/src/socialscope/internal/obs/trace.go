// Golden file: pure stdlib imports and reviewed suppressions stay
// clean inside the scope.
package obs

import (
	"context"
	"encoding/json"

	//sslint:ignore stdlibonly vendored expvar bridge predating the analyzer
	"example.com/legacy/expvarbridge"
)

type Span struct{ attrs []any }

func (s *Span) Annex() string {
	b, _ := json.Marshal(s.attrs)
	return string(b)
}

func From(ctx context.Context) *Span { return nil }

var _ = expvarbridge.Publish
