package stdlibonly_test

import (
	"testing"

	"socialscope/internal/analysis/analysistest"
	"socialscope/internal/analysis/stdlibonly"
)

func TestStdlibOnly(t *testing.T) {
	analysistest.Run(t, "testdata", stdlibonly.Analyzer,
		"socialscope/...",
	)
}
