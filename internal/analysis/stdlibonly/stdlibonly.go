// Package stdlibonly keeps the observability core a stdlib-only leaf.
// Every package in the module — engine facade, serving, routing, WAL,
// store — imports internal/obs for its metric handles, so obs importing
// anything of ours would be an import cycle waiting to happen, and obs
// importing an external module would smuggle a dependency into every
// build. The PR that introduced obs chose flat atomics plus a hand-rolled
// Prometheus text encoder precisely to avoid the client_golang
// dependency; this analyzer machine-enforces that the choice sticks.
package stdlibonly

import (
	"strconv"
	"strings"

	"socialscope/internal/analysis"
)

// Analyzer is the stdlibonly pass.
var Analyzer = &analysis.Analyzer{
	Name: "stdlibonly",
	Doc:  "internal/obs must import only the standard library: no external modules, no socialscope packages",
	Run:  run,
}

// scope is the package subtree held to the stdlib-only rule. Kept as a
// prefix match so a future internal/obs/expvar split inherits it.
const scope = "socialscope/internal/obs"

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	if pkg.Path != scope && !strings.HasPrefix(pkg.Path, scope+"/") {
		return nil
	}
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case path == scope || strings.HasPrefix(path, scope+"/"):
				// Intra-obs imports are fine: the leaf may have internal
				// structure of its own.
			case strings.HasPrefix(path, "socialscope"):
				pass.Reportf(imp.Pos(),
					"internal import %q: obs is a leaf every package depends on — importing back into the module is a cycle in waiting", path)
			case firstSegmentHasDot(path):
				pass.Reportf(imp.Pos(),
					"external dependency %q: the observability layer is stdlib-only by design", path)
			}
		}
	}
	return nil
}

// firstSegmentHasDot reports whether the import path's leading element
// looks like a module host ("github.com/...", "gopkg.in/..."): the
// standard library has no dots in its first segment, external modules
// always do.
func firstSegmentHasDot(path string) bool {
	seg, _, _ := strings.Cut(path, "/")
	return strings.Contains(seg, ".")
}
