// Package rcupublish catches snapshot-aliasing writes: mutations of
// values returned by accessors annotated "//ss:immutable" — adjacency
// slices from graph.Out/In, posting lists from index.List, HAMT leaves
// from persist.Map.At. Under the engine's RCU discipline those values
// alias the published snapshot that concurrent readers are walking;
// writing through them corrupts a version readers already hold,
// bypassing the copy-on-write path that makes snapshots O(1). The
// legal pattern is always Clone-then-mutate (or the package's own
// mutator, which COWs internally).
//
// Aliases are tracked syntactically within each function: a variable
// assigned from an annotated accessor (or derived from one by
// indexing, slicing, field selection, range, or append) is tainted;
// a Clone() call breaks the taint; reassignment from a fresh value
// clears it. Flagged writes: assignments and ++/-- through a tainted
// target, sort/copy over a tainted slice, and bare mutator-method
// calls (Set/Add/Merge/...) on a tainted receiver whose result is
// discarded — a discarded result is the signature of in-place intent,
// which keeps persistent-structure calls like persist.Map.Set (result
// used) legal.
package rcupublish

import (
	"go/ast"

	"socialscope/internal/analysis"
)

// Analyzer is the rcupublish pass.
var Analyzer = &analysis.Analyzer{
	Name: "rcupublish",
	Doc:  "never write through values returned by //ss:immutable accessors — Clone, then mutate",
	Run:  run,
}

// mutatorNames are method names that, called for effect (result
// discarded) on a tainted receiver, mutate it in place.
var mutatorNames = map[string]bool{
	"Set": true, "Add": true, "SetFloat": true, "SetScore": true,
	"Merge": true, "Consolidate": true, "Delete": true, "Clear": true,
}

// sortFns are pkg.Fn spellings that reorder their first argument in
// place.
var sortFns = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "sort.Ints": true, "sort.Strings": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
	"slices.Reverse": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			newChecker(pass).check(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	tainted map[string]string // var name -> accessor it came from
	// cloned are variables assigned from a Clone() call: a deep clone is
	// private by contract, so accessors called ON it return private
	// state too (out := g.Clone(); out.Node(v) is writable).
	cloned map[string]bool
}

func newChecker(pass *analysis.Pass) *checker {
	return &checker{pass: pass, tainted: make(map[string]string), cloned: make(map[string]bool)}
}

// check walks one declaration body in lexical order, growing the taint
// set as it goes; closures share their enclosing function's variables,
// so nested literals are walked in the same pass.
func (c *checker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			c.flagWrites(s)
			c.propagate(s)
		case *ast.IncDecStmt:
			if src := c.taintSource(s.X); src != "" {
				c.pass.Reportf(s.Pos(),
					"increment through a value from %s mutates the published snapshot in place — Clone, then mutate", src)
			}
		case *ast.RangeStmt:
			c.propagateRange(s)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				c.flagCall(call)
			}
		}
		return true
	})
}

// flagWrites reports assignment targets that write through taint.
func (c *checker) flagWrites(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		switch t := lhs.(type) {
		case *ast.Ident:
			// Plain rebinding of the variable itself is not a write
			// through the alias.
		case *ast.IndexExpr:
			if src := c.taintSource(t.X); src != "" {
				c.pass.Reportf(as.Pos(),
					"element write through a value from %s mutates the published snapshot in place — Clone, then mutate", src)
			}
		case *ast.SelectorExpr:
			if src := c.taintSource(t.X); src != "" {
				c.pass.Reportf(as.Pos(),
					"field write through a value from %s mutates the published snapshot in place — Clone, then mutate", src)
			}
		case *ast.StarExpr:
			if src := c.taintSource(t.X); src != "" {
				c.pass.Reportf(as.Pos(),
					"pointer write through a value from %s mutates the published snapshot in place — Clone, then mutate", src)
			}
		}
	}
}

// propagate updates the taint set from an assignment: lhs idents
// become tainted when their rhs is, and clean when reassigned fresh.
func (c *checker) propagate(as *ast.AssignStmt) {
	// Tuple-from-one-call (v, ok := m.Get(k)): taint every ident lhs.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		src := c.taintSource(as.Rhs[0])
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				c.setTaint(id.Name, src)
				c.setCloned(id.Name, false)
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || i >= len(as.Rhs) {
			continue
		}
		c.setTaint(id.Name, c.taintSource(as.Rhs[i]))
		c.setCloned(id.Name, isCloneCall(as.Rhs[i]))
	}
}

// isCloneCall reports whether e is a direct X.Clone() call — the deep
// copy whose result (and everything accessed through it) is private.
func isCloneCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	_, name, ok := analysis.Callee(call)
	return ok && name == "Clone"
}

func (c *checker) setCloned(name string, v bool) {
	if v {
		c.cloned[name] = true
	} else {
		delete(c.cloned, name)
	}
}

func (c *checker) propagateRange(r *ast.RangeStmt) {
	src := c.taintSource(r.X)
	if src == "" {
		return
	}
	if id, ok := r.Value.(*ast.Ident); ok && id.Name != "_" {
		c.setTaint(id.Name, src)
	}
}

func (c *checker) setTaint(name, src string) {
	if src == "" {
		delete(c.tainted, name)
	} else {
		c.tainted[name] = src
	}
}

// taintSource returns the accessor an expression's value aliases, or
// "".
func (c *checker) taintSource(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return c.tainted[v.Name]
	case *ast.ParenExpr:
		return c.taintSource(v.X)
	case *ast.IndexExpr:
		return c.taintSource(v.X)
	case *ast.SliceExpr:
		return c.taintSource(v.X)
	case *ast.SelectorExpr:
		return c.taintSource(v.X)
	case *ast.StarExpr:
		return c.taintSource(v.X)
	case *ast.UnaryExpr:
		return c.taintSource(v.X)
	case *ast.CallExpr:
		return c.callTaint(v)
	}
	return ""
}

// callTaint: annotated accessors seed taint; Clone launders it; append
// over a tainted slice may share its backing array.
func (c *checker) callTaint(call *ast.CallExpr) string {
	if x, name, ok := analysis.Callee(call); ok {
		if name == "Clone" || name == "Copy" {
			return "" // an explicit copy is the sanctioned escape
		}
		if c.pass.Immutable.Has(name) {
			if id, isIdent := x.(*ast.Ident); isIdent && c.cloned[id.Name] {
				return "" // accessor on a deep clone returns private state
			}
			return accessorLabel(c.pass, x, name)
		}
		return ""
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if id.Name == "append" && len(call.Args) > 0 {
			// append may return the same backing array when capacity
			// allows — the result still aliases the snapshot.
			return c.taintSource(call.Args[0])
		}
		if c.pass.Immutable.Has(id.Name) {
			return accessorLabel(c.pass, nil, id.Name)
		}
	}
	return ""
}

// flagCall reports effectful calls that mutate through taint: sorts,
// copy-into, and discarded-result mutator methods.
func (c *checker) flagCall(call *ast.CallExpr) {
	if x, name, ok := analysis.Callee(call); ok {
		if id, isPkg := x.(*ast.Ident); isPkg && sortFns[id.Name+"."+name] && len(call.Args) > 0 {
			if src := c.taintSource(call.Args[0]); src != "" {
				c.pass.Reportf(call.Pos(),
					"%s.%s reorders a value from %s in place — readers of the snapshot see it mid-shuffle; Clone, then sort", id.Name, name, src)
				return
			}
		}
		if mutatorNames[name] {
			if src := c.taintSource(x); src != "" {
				c.pass.Reportf(call.Pos(),
					"%s() with a discarded result on a value from %s is an in-place mutation of the published snapshot — Clone first, or use the value-returning form", name, src)
			}
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "copy" && len(call.Args) > 0 {
		if src := c.taintSource(call.Args[0]); src != "" {
			c.pass.Reportf(call.Pos(),
				"copy into a value from %s overwrites the published snapshot in place — Clone, then mutate", src)
		}
	}
}

func accessorLabel(pass *analysis.Pass, recv ast.Expr, name string) string {
	if sites := pass.Immutable.Sites(name); len(sites) == 1 {
		return sites[0] + " (//ss:immutable)"
	}
	label := name
	if recv != nil {
		if p := analysis.ExprPath(recv); p != "" {
			label = p + "." + name
		}
	}
	return label + " (//ss:immutable)"
}
