// Golden accessor package: the //ss:immutable annotations here feed
// the cross-package registry that rcupublish enforces in consumers.
package snap

type Link struct {
	To    string
	Score float64
	Attrs *Attrs
}

// Clone returns a private copy callers may mutate.
func (l *Link) Clone() *Link { c := *l; return &c }

type Attrs struct{ m map[string]int }

func (a *Attrs) Add(k string)        { a.m[k]++ }
func (a *Attrs) Set(k string, v int) { a.m[k] = v }

type Graph struct{ adj map[string][]*Link }

// Clone returns a deep copy: private links all the way down.
func (g *Graph) Clone() *Graph {
	n := &Graph{adj: map[string][]*Link{}}
	for k, ls := range g.adj {
		for _, l := range ls {
			n.adj[k] = append(n.adj[k], l.Clone())
		}
	}
	return n
}

// Out returns u's live adjacency slice.
//
//ss:immutable — aliases the published snapshot; Clone before mutating.
func (g *Graph) Out(u string) []*Link { return g.adj[u] }

// In returns u's live reverse-adjacency slice.
//
//ss:immutable
func (g *Graph) In(u string) []*Link { return g.adj[u] }

type Map struct{ leaves map[string]*Attrs }

// At returns the leaf stored for k — shared trie state, not a copy.
//
//ss:immutable
func (m *Map) At(k string) *Attrs { return m.leaves[k] }

// Get is At plus a presence bit.
//
//ss:immutable
func (m *Map) Get(k string) (*Attrs, bool) { a, ok := m.leaves[k]; return a, ok }

// Set is persistent: it returns a new Map and never mutates in place.
func (m *Map) Set(k string, a *Attrs) *Map {
	n := &Map{leaves: map[string]*Attrs{k: a}}
	for kk, vv := range m.leaves {
		if kk != k {
			n.leaves[kk] = vv
		}
	}
	return n
}

// List returns the live posting list for a tag.
//
//ss:immutable
func List(g *Graph, tag string) []*Link { return g.adj[tag] }
