// Golden consumer: every write through a value obtained from an
// //ss:immutable accessor is a snapshot corruption; Clone-then-mutate
// and persistent-update shapes stay clean.
package consumer

import (
	"sort"

	"example/snap"
)

func elementWrite(g *snap.Graph) {
	ls := g.Out("u")
	ls[0] = nil // want `element write through a value from example/snap\.Graph\.Out`
}

func fieldWrite(g *snap.Graph) {
	l := g.Out("u")[0]
	l.Score = 2 // want `field write through a value from example/snap\.Graph\.Out`
}

func sortInPlace(g *snap.Graph) {
	ls := g.In("u")
	sort.Slice(ls, func(i, j int) bool { return ls[i].Score > ls[j].Score }) // want `sort\.Slice reorders a value from example/snap\.Graph\.In`
}

func rangeIncrement(g *snap.Graph) {
	for _, l := range g.Out("u") {
		l.Score++ // want `increment through a value from example/snap\.Graph\.Out`
	}
}

func appendAliases(g *snap.Graph, extra *snap.Link) {
	// append can reuse the snapshot's backing array when capacity
	// allows — the result is still tainted.
	ls := append(g.Out("u"), extra)
	ls[0] = extra // want `element write through a value from example/snap\.Graph\.Out`
}

func copyInto(g *snap.Graph, fresh []*snap.Link) {
	ls := g.Out("u")
	copy(ls, fresh) // want `copy into a value from example/snap\.Graph\.Out`
}

func mutatorDiscarded(m *snap.Map) {
	attrs := m.At("k")
	attrs.Add("tag") // want `Add\(\) with a discarded result on a value from example/snap\.Map\.At`
}

func tupleGet(m *snap.Map) {
	attrs, ok := m.Get("k")
	if ok {
		attrs.Set("tag", 1) // want `Set\(\) with a discarded result on a value from example/snap\.Map\.Get`
	}
}

func packageLevelAccessor(g *snap.Graph) {
	posting := snap.List(g, "beach")
	posting[0] = nil // want `element write through a value from example/snap\.List`
}

// cloneThenMutate is the sanctioned pattern.
func cloneThenMutate(g *snap.Graph) {
	l := g.Out("u")[0].Clone()
	l.Score = 2 // clean: Clone broke the alias
}

// clonedReceiver: accessors called on a deep clone return private
// state — the operator idiom (out := g.Clone(); mutate out's elements).
func clonedReceiver(g *snap.Graph) {
	out := g.Clone()
	l := out.Out("u")[0]
	l.Score = 2 // clean: out is a deep clone, its elements are private
}

// persistentUpdate: Map.Set returns a new map; using the result is the
// point, and the receiver was never tainted.
func persistentUpdate(m *snap.Map, a *snap.Attrs) *snap.Map {
	next := m.Set("k", a) // clean: value-returning persistent update
	return next
}

// reassignClears: a variable rebound to fresh state is no longer an
// alias.
func reassignClears(g *snap.Graph, fresh []*snap.Link) {
	ls := g.Out("u")
	ls = fresh
	ls[0] = nil // clean: ls no longer aliases the snapshot
}

// freshSliceWrites never touch the snapshot.
func freshSliceWrites(fresh []*snap.Link) {
	fresh[0] = nil // clean
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Score > fresh[j].Score }) // clean
}
