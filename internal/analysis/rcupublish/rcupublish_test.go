package rcupublish_test

import (
	"testing"

	"socialscope/internal/analysis/analysistest"
	"socialscope/internal/analysis/rcupublish"
)

func TestRCUPublish(t *testing.T) {
	analysistest.Run(t, "testdata", rcupublish.Analyzer, "example/consumer")
}
