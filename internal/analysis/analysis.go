// Package analysis is the repo's static-analysis framework: a minimal,
// dependency-free mirror of the golang.org/x/tools/go/analysis
// vocabulary (the standard vet-extension machinery) that the sslint
// analyzers are written against.
//
// Why a mirror and not the real thing: this module deliberately has no
// external dependencies, and the build environments it targets cannot
// assume a module proxy. The subset implemented here — Analyzer, Pass,
// Diagnostic, a module loader, and an analysistest-style golden-file
// harness (internal/analysis/analysistest) — keeps the analyzer code
// shaped so that a future port to golang.org/x/tools/go/analysis is a
// mechanical change of import paths and Run signatures, not a rewrite.
//
// The framework is purely syntactic: packages are parsed, not
// type-checked. Analyzers therefore resolve imports through each file's
// import table (see ImportLocal) and match methods by name, trading a
// sliver of precision for zero dependencies and millisecond runs. Each
// analyzer documents its heuristics and their known blind spots in
// docs/static-analysis.md.
//
// Two comment directives drive cross-cutting behavior:
//
//   - "//ss:immutable" on a function or method declaration marks its
//     return values as aliasing shared snapshot state that callers must
//     never mutate. The driver collects these into a Registry before
//     any analyzer runs; rcupublish enforces them at call sites.
//   - "//sslint:ignore <analyzer> <reason>" suppresses that analyzer's
//     diagnostics on the same line and the line below. The reason is
//     mandatory: a suppression is a reviewed, documented exception.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed (not type-checked) Go package.
type Package struct {
	// Path is the import path ("socialscope/internal/wal"). Testdata
	// trees mirror real paths so scope-gated analyzers behave
	// identically under test.
	Path string
	// Name is the package clause name.
	Name string
	// Fset positions all files of this package.
	Fset *token.FileSet
	// Files are the parsed compilation units, with comments.
	Files []*ast.File
}

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the short identifier used in output and in
	// sslint:ignore directives.
	Name string
	// Doc states the invariant the analyzer machine-enforces.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding before position resolution.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one package, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Immutable is the cross-package registry of //ss:immutable
	// accessors, collected over every loaded package before analyzers
	// run (the framework's stand-in for analysis facts).
	Immutable *Registry

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is one resolved diagnostic: what sslint prints and what the
// test harness compares against want expectations.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run executes the analyzers over the packages: collect the immutable
// registry over all packages, run every analyzer on every package,
// filter suppressed diagnostics, and return findings sorted by
// position. An analyzer error aborts the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	reg := CollectImmutable(pkgs)
	var out []Finding
	seen := make(map[Finding]bool) // lexical passes can revisit nested literals
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Immutable: reg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				pos := pkg.Fset.Position(d.Pos)
				if sup.suppressed(a.Name, pos) {
					continue
				}
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				if seen[f] {
					continue
				}
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// suppressions maps file -> line -> set of analyzer names silenced
// there by sslint:ignore directives.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}

// collectSuppressions scans every comment for
// "//sslint:ignore <analyzer> <reason>". The directive silences the
// named analyzer on the comment's own line (trailing-comment form) and
// on the next line (own-line form). A missing reason disables the
// suppression — exceptions must say why.
func collectSuppressions(pkg *Package) suppressions {
	sup := make(suppressions)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "sslint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: not a valid suppression
				}
				name := fields[0]
				pos := pkg.Fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					sup[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = make(map[string]bool)
					}
					byLine[line][name] = true
				}
			}
		}
	}
	return sup
}

// ImportLocal returns the local name under which file f refers to the
// import with the given path: the alias if one was given, otherwise the
// path's last element. ok is false when f does not import path (or
// imports it blank or dot — neither yields selector calls).
func ImportLocal(f *ast.File, path string) (name string, ok bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// IsPkgCall reports whether call is pkg.fn(...) where pkg is file f's
// local name for the import path.
func IsPkgCall(f *ast.File, call *ast.CallExpr, path, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Obj != nil { // a local variable shadowing the package name
		return false
	}
	local, ok := ImportLocal(f, path)
	return ok && id.Name == local
}

// Callee splits call.Fun into its receiver expression and selector
// name. ok is false for non-selector callees (plain idents, indexed
// expressions).
func Callee(call *ast.CallExpr) (x ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// ExprPath renders a pure ident/selector chain ("s.mu", "l.fsys") as a
// string key, or "" when e contains calls, indexing or literals — the
// identity key lockio uses to match Lock/Unlock pairs.
func ExprPath(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := ExprPath(v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	case *ast.ParenExpr:
		return ExprPath(v.X)
	}
	return ""
}

// EachFunc invokes fn for every function declaration and function
// literal in file, with the enclosing declaration's name ("" for
// literals outside any declaration — package-level var initializers).
func EachFunc(file *ast.File, fn func(name string, ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd.Name.Name, fd.Type, fd.Body)
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(name, lit.Type, lit.Body)
				}
				return true
			})
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn("", lit.Type, lit.Body)
			}
			return true
		})
	}
}
