// Package analysistest runs an analyzer over golden testdata packages
// and checks its diagnostics against "// want" expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Testdata uses the GOPATH-style layout: testdata/src/<importpath>/
// holds the golden package, so path-scoped analyzers see the same
// import paths under test as in the real tree. A line that should be
// diagnosed carries a trailing comment:
//
//	os.Open(path) // want `direct os\.Open`
//
// The backquoted (or double-quoted) string is a regexp matched against
// the diagnostic message. Several expectations on one line mean several
// diagnostics. Lines without a want comment must produce none.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"socialscope/internal/analysis"
)

// Run loads every package under testdata/src, applies the analyzer,
// and compares its findings in the named packages against their want
// comments. All packages are loaded (the //ss:immutable registry is
// cross-package) but only diagnostics in pkgpaths are checked.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadGOPATHTree(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	checked := make(map[string]bool) // filenames belonging to checked packages
	var wants []*expectation
	for _, pkg := range pkgs {
		if !inPaths(pkg.Path, pkgpaths) {
			continue
		}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			checked[name] = true
			ws, err := collectWants(pkg.Fset, f)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, fd := range findings {
		if !checked[fd.Pos.Filename] {
			continue
		}
		if w := matchWant(wants, fd); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", fd)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func matchWant(wants []*expectation, f analysis.Finding) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			return w
		}
	}
	return nil
}

func inPaths(pkgPath string, pats []string) bool {
	for _, p := range pats {
		if analysis.Match(p, pkgPath) {
			return true
		}
	}
	return false
}

// collectWants extracts "// want `re` `re`..." expectations, anchored
// to the comment's own line.
func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			pats, err := splitPatterns(rest)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", pos.Line, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad want pattern %q: %v", pos.Line, p, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out, nil
}

// splitPatterns parses a sequence of backquoted or double-quoted
// strings: `a` "b" ...
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("want pattern must be quoted with ` or \", got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want clause")
	}
	return out, nil
}
