package analysis

import (
	"go/ast"
	"strings"
)

// Registry is the cross-package set of accessors whose results alias
// shared snapshot state: every function or method whose doc comment
// contains an "//ss:immutable" line. rcupublish flags writes through
// values these return. Matching at call sites is by selector name —
// the framework has no type information — so annotated names should be
// accessor-specific (Out, In, List, At) rather than generic verbs.
type Registry struct {
	// names maps accessor name -> list of "pkgpath.Recv.Name" (or
	// "pkgpath.Name") declaration sites, for diagnostics and docs.
	names map[string][]string
}

// Has reports whether some annotated accessor has this name.
func (r *Registry) Has(name string) bool {
	if r == nil {
		return false
	}
	_, ok := r.names[name]
	return ok
}

// Sites returns the declaration sites of the annotated accessors with
// this name, e.g. ["socialscope/internal/graph.Graph.Out"].
func (r *Registry) Sites(name string) []string {
	if r == nil {
		return nil
	}
	return r.names[name]
}

// CollectImmutable scans every function declaration in pkgs for the
// "//ss:immutable" directive and returns the resulting registry. The
// directive must be its own line in the doc comment; trailing prose
// after the marker is allowed ("//ss:immutable — callers must Clone").
func CollectImmutable(pkgs []*Package) *Registry {
	reg := &Registry{names: make(map[string][]string)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || !hasImmutableDirective(fd.Doc) {
					continue
				}
				site := pkg.Path + "." + fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					if recv := recvTypeName(fd.Recv.List[0].Type); recv != "" {
						site = pkg.Path + "." + recv + "." + fd.Name.Name
					}
				}
				reg.names[fd.Name.Name] = append(reg.names[fd.Name.Name], site)
			}
		}
	}
	return reg
}

func hasImmutableDirective(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "ss:immutable" || strings.HasPrefix(text, "ss:immutable ") || strings.HasPrefix(text, "ss:immutable:") {
			return true
		}
	}
	return false
}

func recvTypeName(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(v.X)
	case *ast.Ident:
		return v.Name
	case *ast.IndexExpr: // generic receiver Map[K, V] — single param
		return recvTypeName(v.X)
	case *ast.IndexListExpr: // generic receiver, multiple params
		return recvTypeName(v.X)
	}
	return ""
}
