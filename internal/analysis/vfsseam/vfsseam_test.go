package vfsseam_test

import (
	"testing"

	"socialscope/internal/analysis/analysistest"
	"socialscope/internal/analysis/vfsseam"
)

func TestVFSSeam(t *testing.T) {
	analysistest.Run(t, "testdata", vfsseam.Analyzer,
		"socialscope/...",
	)
}
