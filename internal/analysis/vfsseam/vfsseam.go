// Package vfsseam flags direct os.* filesystem calls inside the
// durability layer — internal/wal, internal/store, and the facade's
// durable.go. Every byte those packages touch must flow through the
// vfs.FS seam: the crash-at-every-op differential harness
// (vfs.FaultFS) can only injure IO it can see, so a raw os.Open or
// os.Rename is a hole in the crash-safety proof. PR 6's harness found
// torn-tail and fsync-ordering bugs precisely because all store/wal IO
// was behind the seam; this analyzer keeps it that way.
package vfsseam

import (
	"go/ast"
	"strings"

	"socialscope/internal/analysis"
)

// Analyzer is the vfsseam pass.
var Analyzer = &analysis.Analyzer{
	Name: "vfsseam",
	Doc:  "durability packages must do filesystem IO through vfs.FS, never os.* directly",
	Run:  run,
}

// fsFuncs are the os package's filesystem entry points. Constants
// (os.O_WRONLY) and process functions (os.Exit, os.Getenv) are not
// calls into the filesystem and stay legal.
var fsFuncs = map[string]bool{
	"Open": true, "Create": true, "OpenFile": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"Truncate": true, "Stat": true, "Lstat": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"CreateTemp": true, "Chmod": true, "Symlink": true, "Link": true,
}

// scopedPkgs are the packages whose every file is in scope.
var scopedPkgs = map[string]bool{
	"socialscope/internal/wal":   true,
	"socialscope/internal/store": true,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		if !inScope(pkg, file) {
			continue
		}
		osName, ok := analysis.ImportLocal(file, "os")
		if !ok {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			x, name, ok := analysis.Callee(call)
			if !ok || !fsFuncs[name] {
				return true
			}
			id, ok := x.(*ast.Ident)
			if !ok || id.Name != osName || id.Obj != nil {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.%s in the durability layer bypasses vfs.FS and is invisible to the crash harness", name)
			return true
		})
	}
	return nil
}

func inScope(pkg *analysis.Package, file *ast.File) bool {
	if scopedPkgs[pkg.Path] {
		return true
	}
	if pkg.Path != "socialscope" {
		return false
	}
	name := pkg.Fset.Position(file.Pos()).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name == "durable.go"
}
