// Golden file: in the root package only durable.go is in scope.
package socialscope

import "os"

func recoverState(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil { // want `direct os\.MkdirAll`
		return err
	}
	f, err := os.OpenFile(dir+"/wal", os.O_RDONLY, 0) // want `direct os\.OpenFile`
	if err != nil {
		return err
	}
	return f.Close()
}
