// Golden file: serve is outside the vfsseam scope; raw os IO here is
// not this analyzer's business.
package serve

import "os"

func dumpProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
