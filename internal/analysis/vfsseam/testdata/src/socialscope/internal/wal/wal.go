// Golden file: the wal package is inside the vfsseam scope, so every
// direct os filesystem call must be diagnosed while vfs-seam calls and
// non-filesystem os functions stay clean.
package wal

import (
	"os"

	"socialscope/internal/vfs"
)

type Log struct {
	fsys vfs.FS
	dir  string
}

func (l *Log) Rotate(name string) error {
	f, err := os.Create(name) // want `direct os\.Create`
	if err != nil {
		return err
	}
	_ = f
	if err := os.Rename(name, name+".seg"); err != nil { // want `direct os\.Rename`
		return err
	}
	entries, err := os.ReadDir(l.dir) // want `direct os\.ReadDir`
	if err != nil {
		return err
	}
	_ = entries
	return os.Remove(name) // want `direct os\.Remove`
}

func (l *Log) open(name string) (vfs.File, error) {
	// Clean: IO through the seam, and os constants are not calls.
	return l.fsys.OpenFile(name, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

func (l *Log) env() string {
	// Clean: os.Getenv is not filesystem IO.
	return os.Getenv("WAL_DIR")
}

func (l *Log) migrate(name string) error {
	//sslint:ignore vfsseam one-time migration outside the crash-consistency domain
	return os.Remove(name)
}
