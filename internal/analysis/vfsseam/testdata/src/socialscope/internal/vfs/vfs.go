// Minimal vfs stub so golden packages resolve their imports. Parsed,
// never compiled.
package vfs

import "io"

type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

type FS interface {
	OpenFile(name string, flag int, perm uint32) (File, error)
}
