// Golden file: root-package files other than durable.go are out of
// scope — loading a corpus with os.Open here is legal.
package socialscope

import "os"

func loadCorpus(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}
