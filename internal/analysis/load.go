package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses every non-test package under root, the directory
// containing go.mod, and returns them sorted by import path. Package
// paths are derived from the module clause, so scope-gated analyzers
// see the same identities ("socialscope/internal/wal") the compiler
// does. Skipped: hidden directories, testdata trees (analyzer golden
// files are deliberately full of violations), and _test.go files (test
// code is itself harness code — it exercises the raw filesystem and
// the fault injector on purpose).
func LoadModule(root string) ([]*Package, error) {
	module, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := LoadDir(path, importPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadGOPATHTree parses every package under srcRoot, a GOPATH-style
// "src" directory where each package's import path is its path
// relative to srcRoot. This is the analysistest layout: golden files
// live at testdata/src/<importpath>/ so that path-scoped analyzers
// (vfsseam, ctxflow) treat them exactly like the real packages they
// mirror.
func LoadGOPATHTree(srcRoot string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(srcRoot, path)
		if err != nil || rel == "." {
			return err
		}
		pkg, err := LoadDir(path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses the single package in dir, if any. Returns (nil, nil)
// for directories with no non-test Go files.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var pkgName string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &Package{Path: importPath, Name: pkgName, Fset: fset, Files: files}, nil
}

// Match reports whether the package path matches a go-style pattern:
// "p" exactly, or "p/..." for p and everything under it ("./..."
// callers resolve the prefix to an import path first).
func Match(pattern, pkgPath string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
	}
	return pkgPath == pattern
}

func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module clause", gomod)
}
