package lockio_test

import (
	"testing"

	"socialscope/internal/analysis/analysistest"
	"socialscope/internal/analysis/lockio"
)

func TestLockIO(t *testing.T) {
	analysistest.Run(t, "testdata", lockio.Analyzer, "example/locks")
}
