// Golden file for lockio: read IO under a lock is the wal.Replay bug
// class; write IO under the exclusive lock is the legal durability
// barrier; anything under an RLock is flagged.
package locks

import (
	"io"
	"os"
	"sync"
)

type FS interface {
	ReadFile(name string) ([]byte, error)
	ReadDir(dir string) ([]string, error)
	Size(name string) (int64, error)
	Truncate(name string, size int64) error
}

type File interface {
	io.Writer
	Sync() error
	Close() error
}

type Log struct {
	mu    sync.RWMutex
	fsys  FS
	f     File
	segs  []string
	good  int64
	bytes []byte
}

// replayBad is the PR 7 bug shape: whole segments read and decoded
// while every appender waits on l.mu.
func (l *Log) replayBad() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, seg := range l.segs {
		data, err := l.fsys.ReadFile(seg) // want `ReadFile under l\.mu\.Lock\(\)`
		if err != nil {
			return err
		}
		l.bytes = append(l.bytes, data...)
	}
	return nil
}

// replayGood is the fixed shape: snapshot the segment list and the
// watermark under the lock, read outside.
func (l *Log) replayGood() error {
	l.mu.Lock()
	segs := append([]string(nil), l.segs...)
	good := l.good
	l.mu.Unlock()
	_ = good
	for _, seg := range segs {
		data, err := l.fsys.ReadFile(seg)
		if err != nil {
			return err
		}
		l.bytes = append(l.bytes, data...)
	}
	return nil
}

// appendSync is the durability barrier: Write+Sync under the exclusive
// writer lock is fsync-before-ack, not a finding.
func (l *Log) appendSync(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	return l.f.Sync()
}

// scanUnderLock mixes more read-side shapes inside an explicit
// Lock/Unlock span. The span ends at the lexically first Unlock —
// anything after it is clean again.
func (l *Log) scanUnderLock(dir string) error {
	l.mu.Lock()
	names, err := l.fsys.ReadDir(dir) // want `ReadDir under l\.mu\.Lock\(\)`
	f, err2 := os.Open(dir)           // want `os\.Open under l\.mu\.Lock\(\)`
	l.mu.Unlock()
	if err != nil || err2 != nil {
		return err
	}
	_ = f
	_ = names
	// After the unlock: reads are free again.
	_, err = l.fsys.Size(dir)
	return err
}

// underRLock: a shared lock never excuses IO — read or write.
func (l *Log) underRLock(name string) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if _, err := l.fsys.Size(name); err != nil { // want `Size under l\.mu\.RLock\(\)`
		return err
	}
	return l.fsys.Truncate(name, l.good) // want `Truncate under l\.mu\.RLock\(\)`
}

// noLock: plain IO with no lock held is out of scope.
func (l *Log) noLock(name string) ([]byte, error) {
	return l.fsys.ReadFile(name)
}

// suppressed documents the one reviewed exception shape.
func (l *Log) suppressed(name string) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	//sslint:ignore lockio bootstrap path, no concurrent appenders exist yet
	return l.fsys.ReadFile(name)
}
