// Package lockio flags file IO performed lexically between a
// mutex Lock/Unlock pair — the PR 7 wal.Replay bug class, where whole
// WAL segments were read and decoded under the log mutex, stalling
// every concurrent append behind disk latency. The fix pattern the
// analyzer pushes toward: snapshot the shared state under the lock
// (segment list, good-size watermark), unlock, then do the IO outside.
//
// The engine's durability barrier is an intentional exception: an
// acknowledged write REQUIRES fsync-before-ack under the writer lock
// (wal.AppendSync holds l.mu across Write+Sync so acks and the log
// agree on ordering). lockio therefore scopes by lock kind:
//
//   - under an exclusive Lock, only read-side IO is flagged — reads
//     can always be moved outside by snapshotting, while write-side
//     IO under the writer lock is the durability protocol itself;
//   - under an RLock, both read and write IO are flagged — a shared
//     lock never justifies blocking other readers on the disk, and
//     write IO under a read lock is a correctness smell outright.
//
// Purely lexical: a call inside a function literal defined in the
// locked region is treated as running under the lock (the common case:
// forEach callbacks invoked synchronously while held).
package lockio

import (
	"go/ast"
	"go/token"

	"socialscope/internal/analysis"
)

// Analyzer is the lockio pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "no read-side file IO between Lock/Unlock, no IO at all between RLock/RUnlock",
	Run:  run,
}

// readIO are method/function selector names that read from the
// filesystem regardless of receiver (vfs.ReadFile, io.ReadAll,
// fsys.ReadDir, fsys.Size, f.ReadAt).
var readIO = map[string]bool{
	"ReadFile": true, "ReadAll": true, "ReadDir": true,
	"Size": true, "ReadAt": true,
}

// writeIO are write-side selector names — legal under an exclusive
// lock (the fsync-before-ack barrier), flagged under RLock.
var writeIO = map[string]bool{
	"Write": true, "WriteString": true, "Sync": true, "Flush": true,
	"OpenFile": true, "Create": true, "Truncate": true,
	"Rename": true, "Remove": true, "MkdirAll": true,
	"AppendSync": true, "WriteFile": true, "WriteFileSync": true,
}

// osReadFns are os-package read entry points flagged under any lock.
var osReadFns = map[string]bool{"Open": true, "Stat": true, "ReadFile": true, "ReadDir": true}

type interval struct {
	key    string // lock receiver path, e.g. "l.mu"
	shared bool   // RLock vs Lock
	start  token.Pos
	end    token.Pos
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		f := file
		analysis.EachFunc(file, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkFunc(pass, f, body)
		})
	}
	return nil
}

// checkFunc flags IO inside the lock intervals of one function body.
// Nested function literals are scanned as part of the enclosing
// interval (lexical containment) and again on their own by EachFunc
// for their private Lock/Unlock pairs; the two passes cannot
// double-report because an inner literal never re-contains the outer
// interval's bounds.
func checkFunc(pass *analysis.Pass, file *ast.File, body *ast.BlockStmt) {
	intervals := lockIntervals(body)
	if len(intervals) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		iv := containing(intervals, call.Pos())
		if iv == nil {
			return true
		}
		x, name, ok := analysis.Callee(call)
		if !ok {
			return true
		}
		switch {
		case readIO[name] && !isLockTarget(x, iv.key):
			pass.Reportf(call.Pos(),
				"%s under %s: read IO while holding the lock — snapshot state under the lock and read outside (wal.Replay bug class)",
				name, lockName(iv))
		case isOSReadCall(file, call, name):
			pass.Reportf(call.Pos(),
				"os.%s under %s: read IO while holding the lock — snapshot state under the lock and read outside (wal.Replay bug class)",
				name, lockName(iv))
		case iv.shared && writeIO[name]:
			pass.Reportf(call.Pos(),
				"%s under %s: write IO under a shared read lock blocks every reader and cannot be the durability barrier",
				name, lockName(iv))
		}
		return true
	})
}

func isOSReadCall(file *ast.File, call *ast.CallExpr, name string) bool {
	return osReadFns[name] && analysis.IsPkgCall(file, call, "os", name)
}

// isLockTarget guards against self-matches like key "l.mu" receiver —
// Size/ReadAt etc. never appear on a mutex, but keep the check cheap
// and explicit.
func isLockTarget(x ast.Expr, key string) bool {
	return analysis.ExprPath(x) == key
}

func lockName(iv *interval) string {
	if iv.shared {
		return iv.key + ".RLock()"
	}
	return iv.key + ".Lock()"
}

// lockIntervals computes the lexical [Lock, Unlock] spans of body. A
// lock with a matching `defer Unlock` in the same function extends to
// the end of the body. Nested function literals are skipped — their
// pairs are their own function's business.
func lockIntervals(body *ast.BlockStmt) []*interval {
	opened := map[string]*interval{}
	var out []*interval
	deferred := map[string]bool{}
	inspectShallow(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return
			}
			x, name, ok := analysis.Callee(call)
			if !ok {
				return
			}
			key := analysis.ExprPath(x)
			if key == "" {
				return
			}
			switch name {
			case "Lock", "RLock":
				if opened[key] == nil {
					iv := &interval{key: key, shared: name == "RLock", start: call.End()}
					opened[key] = iv
					out = append(out, iv)
				}
			case "Unlock", "RUnlock":
				if iv := opened[key]; iv != nil {
					iv.end = call.Pos()
					delete(opened, key)
				}
			}
		case *ast.DeferStmt:
			if x, name, ok := analysis.Callee(s.Call); ok && (name == "Unlock" || name == "RUnlock") {
				if key := analysis.ExprPath(x); key != "" {
					deferred[key] = true
				}
			}
		}
	})
	var kept []*interval
	for _, iv := range out {
		if iv.end == token.NoPos {
			if !deferred[iv.key] {
				continue // unmatched Lock with no deferred Unlock: don't guess
			}
			iv.end = body.End()
		}
		kept = append(kept, iv)
	}
	return kept
}

// containing returns the innermost interval containing pos, preferring
// shared (stricter) intervals on ties.
func containing(ivs []*interval, pos token.Pos) *interval {
	var best *interval
	for _, iv := range ivs {
		if pos <= iv.start || pos >= iv.end {
			continue
		}
		if best == nil || iv.shared && !best.shared {
			best = iv
		}
	}
	return best
}

// inspectShallow walks n's statements without descending into nested
// function literals.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if m != nil {
			fn(m)
		}
		return true
	})
}
