// Package ctxflow enforces context threading on the request path: in
// the serve layer and the facade, a function that has a
// context.Context (or an *http.Request, which carries one) must not
// call the context-free engine variants — Search/Query/Recommend/
// TopK/DiscoverTagged all have Ctx siblings that honor deadlines and
// admission-control cancellation — and must not mint a fresh
// context.Background()/TODO(), which silently detaches the call from
// the request's deadline. PR 5's p99 wins came from cancellation
// propagating through the whole query path; one context-free call
// reintroduces unbounded tail latency.
//
// The facade's thin wrappers (Search calling SearchCtx with
// context.Background()) are legal by construction: they have no
// context in scope, so nothing is being dropped.
package ctxflow

import (
	"go/ast"

	"socialscope/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "request paths must thread the in-scope context: use Ctx variants, never context.Background()",
	Run:  run,
}

// scopedPkgs are the request-path packages. The routing tier is in
// scope for the same reason the serve layer is: a proxied request that
// loses its context keeps retrying and hedging against backends after
// the client hung up. (Its health checker and failover loop legally
// mint contexts — they run on their own cadence, with no request in
// scope.)
var scopedPkgs = map[string]bool{
	"socialscope":                true,
	"socialscope/internal/serve": true,
	"socialscope/internal/route": true,
	"socialscope/cmd/ssrouter":   true,
}

// ctxVariants are engine entry points with Ctx siblings. Discover is
// deliberately absent: it has no Ctx variant (yet).
var ctxVariants = map[string]bool{
	"Search": true, "Query": true, "Recommend": true,
	"TopK": true, "DiscoverTagged": true,
}

func run(pass *analysis.Pass) error {
	if !scopedPkgs[pass.Pkg.Path] {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		f := file
		analysis.EachFunc(file, func(_ string, ft *ast.FuncType, body *ast.BlockStmt) {
			ctxName, reqVar := contextParam(f, ft)
			if ctxName == "" {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if x, name, ok := analysis.Callee(call); ok && ctxVariants[name] && !rootedAt(x, reqVar) {
					pass.Reportf(call.Pos(),
						"%s drops the in-scope context %s: call %sCtx so deadlines and cancellation propagate",
						name, ctxName, name)
				}
				if isContextMint(f, call) {
					pass.Reportf(call.Pos(),
						"fresh context on a request path detaches from %s's deadline: thread the caller's context", ctxName)
				}
				return true
			})
		})
	}
	return nil
}

// contextParam returns how the function can reach a request context:
// the name of a non-blank context.Context parameter, or "r.Context()"
// for an *http.Request parameter (with reqVar = "r", so calls rooted
// at the request itself — r.URL.Query() — are not mistaken for engine
// entry points). "" means no context in scope.
func contextParam(file *ast.File, ft *ast.FuncType) (expr, reqVar string) {
	if ft.Params == nil {
		return "", ""
	}
	ctxPkg, hasCtx := analysis.ImportLocal(file, "context")
	httpPkg, hasHTTP := analysis.ImportLocal(file, "net/http")
	for _, field := range ft.Params.List {
		if hasCtx && isSelType(field.Type, ctxPkg, "Context") {
			if name := fieldName(field); name != "" {
				return name, ""
			}
		}
		if hasHTTP {
			if star, ok := field.Type.(*ast.StarExpr); ok && isSelType(star.X, httpPkg, "Request") {
				if name := fieldName(field); name != "" {
					return name + ".Context()", name
				}
			}
		}
	}
	return "", ""
}

// rootedAt reports whether the receiver chain starts at the variable
// named root ("r" matches r.URL, r.Form, ...).
func rootedAt(x ast.Expr, root string) bool {
	if root == "" {
		return false
	}
	path := analysis.ExprPath(x)
	return path == root || len(path) > len(root) && path[:len(root)] == root && path[len(root)] == '.'
}

func fieldName(field *ast.Field) string {
	for _, n := range field.Names {
		if n.Name != "_" {
			return n.Name
		}
	}
	return ""
}

func isSelType(t ast.Expr, pkg, name string) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

func isContextMint(file *ast.File, call *ast.CallExpr) bool {
	return analysis.IsPkgCall(file, call, "context", "Background") ||
		analysis.IsPkgCall(file, call, "context", "TODO")
}
