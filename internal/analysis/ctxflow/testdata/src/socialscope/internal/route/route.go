// Golden file: the routing tier is a request path too. A proxy try
// must derive its per-try deadline from the caller's context, and a
// handler must not mint a fresh one — but the health checker and the
// failover loop own their lifecycles and mint legally.
package route

import (
	"context"
	"net/http"
	"time"
)

type Router struct {
	client *http.Client
}

func (rt *Router) serveRead(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `fresh context on a request path`
	_ = ctx
}

func (rt *Router) tryOnce(ctx context.Context, url string) error {
	// Clean: the per-try timeout derives from the caller's context, so
	// client disconnects stop the retry loop.
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	_, err = rt.client.Do(req)
	return err
}

func (rt *Router) tryDetached(ctx context.Context, url string) error {
	tctx, cancel := context.WithTimeout(context.Background(), time.Second) // want `fresh context on a request path`
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	_, err = rt.client.Do(req)
	return err
}

func (rt *Router) probe(url string) {
	// Clean: the health checker runs on its own cadence; there is no
	// request whose deadline could be dropped.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if req != nil {
		rt.client.Do(req)
	}
}
