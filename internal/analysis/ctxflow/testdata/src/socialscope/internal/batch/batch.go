// Golden file: packages outside the request path are not ctxflow's
// business even when a context is in scope.
package batch

import (
	"context"

	"socialscope"
)

func Warm(ctx context.Context, eng *socialscope.Engine) {
	out, _ := eng.Search("u", "q") // clean: out of scope
	_ = out
}
