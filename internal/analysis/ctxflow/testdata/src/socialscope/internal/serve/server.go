// Golden file: HTTP handlers carry a context via *http.Request; every
// engine call must use the Ctx variant against r.Context().
package serve

import (
	"context"
	"net/http"

	"socialscope"
)

type Server struct {
	eng *socialscope.Engine
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	out, err := s.eng.Search(r.URL.Query().Get("user"), "q") // want `Search drops the in-scope context r\.Context\(\)`
	_ = out
	_ = err
}

func (s *Server) handleSearchCtx(w http.ResponseWriter, r *http.Request) {
	out, err := s.eng.SearchCtx(r.Context(), r.URL.Query().Get("user"), "q") // clean
	_ = out
	_ = err
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `fresh context on a request path`
	_ = ctx
}

func (s *Server) flushLoop() {
	// Clean: no request in scope — background maintenance may own its
	// lifecycle.
	ctx := context.Background()
	_ = ctx
	out, _ := s.eng.Search("system", "warmup") // clean: no context to drop
	_ = out
}

func (s *Server) register(mux *http.ServeMux) {
	mux.HandleFunc("/inline", func(w http.ResponseWriter, r *http.Request) {
		out, _ := s.eng.Search("u", "q") // want `Search drops the in-scope context r\.Context\(\)`
		_ = out
	})
}
