// Golden file: the facade package is in ctxflow scope. Thin wrappers
// without a context in scope are legal; ctx-taking paths must thread
// it.
package socialscope

import "context"

type Engine struct{}

func (e *Engine) Search(user, q string) ([]string, error) {
	// Clean: no context in scope — this IS the documented thin-wrapper
	// idiom, nothing is being dropped.
	return e.SearchCtx(context.Background(), user, q)
}

func (e *Engine) SearchCtx(ctx context.Context, user, q string) ([]string, error) {
	return nil, nil
}

func (e *Engine) DiscoverTagged(tag string) []string    { return nil }
func (e *Engine) DiscoverTaggedCtx(ctx context.Context, tag string) []string { return nil }

func (e *Engine) QueryCtx(ctx context.Context, user, q string) ([]string, error) {
	hot := e.DiscoverTagged(q) // want `DiscoverTagged drops the in-scope context ctx`
	_ = hot
	return e.SearchCtx(ctx, user, q) // clean: Ctx variant with the threaded context
}

func (e *Engine) refresh(ctx context.Context) error {
	bg := context.Background() // want `fresh context on a request path detaches from ctx's deadline`
	_ = bg
	return nil
}
