package ctxflow_test

import (
	"testing"

	"socialscope/internal/analysis/analysistest"
	"socialscope/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"socialscope", "socialscope/internal/serve", "socialscope/internal/batch",
		"socialscope/internal/route",
	)
}
