// Observability overhead: the instrumented benchmarks drive the exact
// same query as the uninstrumented ones, differing only in whether a
// trace span rides the context. The acceptance bar is <5% overhead —
// metrics are always-on atomics, so the span (attr map writes + stage
// timers) is the only toggleable cost.
package socialscope

import (
	"context"
	"testing"

	"socialscope/internal/obs"
	"socialscope/internal/workload"
)

func benchObsEngine(b *testing.B) (*Engine, *workload.TravelCorpus) {
	b.Helper()
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 150, Destinations: 60, Seed: 7, VisitsPerUser: 8, TagFraction: 0.8,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(corpus.Graph, Config{
		ItemType: "destination", TopK: TopKTA, Obs: obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the lazily built index so neither variant pays for it.
	if _, err := eng.Search(corpus.Users[0], workload.Categories[0]); err != nil {
		b.Fatal(err)
	}
	return eng, corpus
}

func BenchmarkUninstrumentedSearch(b *testing.B) {
	eng, corpus := benchObsEngine(b)
	query := workload.Categories[0]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchCtx(ctx, corpus.Users[i%len(corpus.Users)], query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstrumentedSearch(b *testing.B) {
	eng, corpus := benchObsEngine(b)
	query := workload.Categories[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := obs.WithSpan(context.Background(), obs.NewSpan())
		if _, err := eng.SearchCtx(ctx, corpus.Users[i%len(corpus.Users)], query); err != nil {
			b.Fatal(err)
		}
	}
}
