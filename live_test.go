package socialscope

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"socialscope/internal/graph"
	"socialscope/internal/workload"
)

// liveConfig is the engine configuration every live-update test uses.
func liveConfig() Config {
	return Config{ItemType: "destination", TopK: TopKTA}
}

// tagMutation builds an add-link mutation: user tags item with tag.
func tagMutation(id LinkID, user, item NodeID, tag string) Mutation {
	l := graph.NewLink(id, user, item, TypeAct, SubtypeTag)
	l.Attrs.Add("tags", tag)
	return Mutation{Kind: graph.MutAddLink, Link: l}
}

// TestEngineApplyMatchesRebuild pins the live engine's correctness: after
// Apply, rankings must equal those of a fresh engine built over the
// mutated graph, and the original input graph must be untouched.
func TestEngineApplyMatchesRebuild(t *testing.T) {
	corpus := topkCorpus(t)
	query := workload.Categories[0]
	eng, err := New(corpus.Graph, liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(corpus.Users[0], query); err != nil {
		t.Fatal(err) // warm: builds index snapshot version 0
	}

	linksBefore := corpus.Graph.NumLinks()
	nextLink := corpus.Graph.MaxLinkID()
	var muts []Mutation
	for i, u := range corpus.Users[:12] {
		nextLink++
		d := corpus.Destinations[i%len(corpus.Destinations)]
		muts = append(muts, tagMutation(nextLink, u, d, workload.Categories[0]))
	}
	if err := eng.Apply(muts); err != nil {
		t.Fatal(err)
	}
	if corpus.Graph.NumLinks() != linksBefore {
		t.Fatalf("Apply mutated the caller's graph: %d links, had %d",
			corpus.Graph.NumLinks(), linksBefore)
	}
	if eng.Version() != 1 {
		t.Fatalf("engine version %d after one Apply, want 1", eng.Version())
	}

	rebuilt := corpus.Graph.Clone()
	if err := rebuilt.ApplyAll(muts); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(rebuilt, liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range corpus.Users[:10] {
		live, err := eng.Search(u, query)
		if err != nil {
			t.Fatal(err)
		}
		stats, ok := eng.LastSearchStats()
		if !ok || stats.SnapshotVersion != 1 {
			t.Fatalf("user %d: stats %+v ok=%v, want snapshot version 1", u, stats, ok)
		}
		want, err := fresh.Search(u, query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live.Results(), want.Results()) {
			t.Errorf("user %d: live results diverge from rebuild\n got %v\nwant %v",
				u, live.Results(), want.Results())
		}
	}
}

// TestEngineApplyChangelog drives Apply from a recorded changelog: edits
// happen on a scratch copy of the site graph, the drained log feeds the
// engine, and a brand-new user becomes searchable.
func TestEngineApplyChangelog(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(corpus.Users[0], workload.Categories[0]); err != nil {
		t.Fatal(err)
	}

	scratch := corpus.Graph.Clone()
	log := graph.RecordInto(scratch)
	newcomer := scratch.MaxNodeID() + 1
	if err := scratch.AddNode(graph.NewNode(newcomer, TypeUser)); err != nil {
		t.Fatal(err)
	}
	lid := scratch.MaxLinkID()
	for _, friend := range corpus.Users[:3] {
		lid++
		if err := scratch.AddLink(graph.NewLink(lid, newcomer, friend, TypeConnect, SubtypeFriend)); err != nil {
			t.Fatal(err)
		}
	}
	// A friend endorses a destination with the query tag, so the newcomer
	// provably scores it.
	lid++
	endorsed := graph.NewLink(lid, corpus.Users[0], corpus.Destinations[0], TypeAct, SubtypeTag)
	endorsed.Attrs.Add("tags", workload.Categories[0])
	if err := scratch.AddLink(endorsed); err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(log.Drain()); err != nil {
		t.Fatal(err)
	}

	resp, err := eng.Search(newcomer, workload.Categories[0])
	if err != nil {
		t.Fatalf("newcomer not searchable after Apply: %v", err)
	}
	found := false
	for _, r := range resp.Results() {
		if r.Item == corpus.Destinations[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("newcomer does not see the friend-endorsed destination: %v", resp.Results())
	}
}

// TestEngineLiveConcurrent hammers one engine with concurrent Search,
// Apply, LastSearchStats and Version calls. Run under -race this is the
// concurrency-correctness gate for the RCU snapshot path; in any mode it
// verifies the final state converges to exactly what a fresh engine over
// the final graph computes.
func TestEngineLiveConcurrent(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(corpus.Users[0], workload.Categories[0]); err != nil {
		t.Fatal(err)
	}

	const (
		searchers       = 4
		appliers        = 2
		batchesPer      = 12
		tagsPerBatch    = 4
		searchesPerGoro = 40
	)
	var nextLink atomic.Int64
	nextLink.Store(int64(corpus.Graph.MaxLinkID()))
	errCh := make(chan error, searchers+appliers)
	var wg sync.WaitGroup

	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < searchesPerGoro; i++ {
				u := corpus.Users[(s*7+i)%len(corpus.Users)]
				q := workload.Categories[i%len(workload.Categories)]
				if _, err := eng.Search(u, q); err != nil {
					errCh <- fmt.Errorf("searcher %d: %w", s, err)
					return
				}
				eng.LastSearchStats()
				eng.Version()
			}
			errCh <- nil
		}(s)
	}
	for a := 0; a < appliers; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				muts := make([]Mutation, tagsPerBatch)
				for i := range muts {
					u := corpus.Users[(a*13+b*5+i)%len(corpus.Users)]
					d := corpus.Destinations[(a+b*3+i)%len(corpus.Destinations)]
					tag := workload.Categories[(b+i)%len(workload.Categories)]
					muts[i] = tagMutation(LinkID(nextLink.Add(1)), u, d, tag)
				}
				if err := eng.Apply(muts); err != nil {
					errCh <- fmt.Errorf("applier %d: %w", a, err)
					return
				}
			}
			errCh <- nil
		}(a)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got, want := eng.Version(), uint64(appliers*batchesPer); got != want {
		t.Errorf("engine version %d after %d batches, want %d", got, want, want)
	}
	// Convergence: the live engine now answers exactly like a fresh build
	// over its final graph.
	fresh, err := New(eng.Graph(), liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range corpus.Users[:8] {
		q := workload.Categories[0]
		live, err := eng.Search(u, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Search(u, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live.Results(), want.Results()) {
			t.Errorf("user %d: post-storm results diverge from fresh build", u)
		}
	}
	stats, ok := eng.LastSearchStats()
	if !ok || stats.SnapshotVersion != uint64(appliers*batchesPer) {
		t.Errorf("final stats %+v ok=%v, want snapshot version %d",
			stats, ok, appliers*batchesPer)
	}
}

// TestEngineApplyEmptyAndError covers the no-op and failure paths: an
// empty batch publishes nothing, and a bad mutation leaves the engine on
// its prior state.
func TestEngineApplyEmptyAndError(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(nil); err != nil {
		t.Fatal(err)
	}
	if eng.Version() != 0 {
		t.Errorf("empty Apply bumped version to %d", eng.Version())
	}
	// Dangling endpoint: the batch must be rejected atomically.
	bad := tagMutation(corpus.Graph.MaxLinkID()+1, 999999, corpus.Destinations[0], "x")
	if err := eng.Apply([]Mutation{bad}); err == nil {
		t.Fatal("mutation with dangling endpoint accepted")
	}
	// An addition the engine's graph already contains must be rejected
	// loudly — silently replaying it would double-count the activity in
	// the index's duplicate refcounts.
	dup := Mutation{Kind: graph.MutAddLink, Link: corpus.Graph.Links()[0].Clone()}
	if err := eng.Apply([]Mutation{dup}); err == nil {
		t.Fatal("mutation already present in the serving graph accepted")
	}
	if eng.Version() != 0 {
		t.Errorf("failed Apply bumped version to %d", eng.Version())
	}
	if _, err := eng.Search(corpus.Users[0], workload.Categories[0]); err != nil {
		t.Errorf("engine unusable after rejected Apply: %v", err)
	}
	// Remove-then-re-add of the same id inside one batch is a legitimate
	// recorded sequence and must pass validation.
	link := corpus.Graph.Links()[0]
	if err := eng.Apply([]Mutation{
		{Kind: graph.MutRemoveLink, Link: link.Clone()},
		{Kind: graph.MutAddLink, Link: link.Clone()},
	}); err != nil {
		t.Fatalf("remove-then-re-add batch rejected: %v", err)
	}
}

// TestEngineApplyRejectsUnmaintainable pins the two consolidation hazards
// Apply must refuse: replaying an already-absorbed changelog, and
// promoting an already-linked node to a user (the index cannot recover
// the node's pre-existing links from mutations alone).
func TestEngineApplyRejectsUnmaintainable(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, liveConfig())
	if err != nil {
		t.Fatal(err)
	}

	scratch := corpus.Graph.Clone()
	log := graph.RecordInto(scratch)
	ext := scratch.Links()[0].Clone()
	ext.Attrs.Add("note", "edited")
	if err := scratch.PutLink(ext); err != nil {
		t.Fatal(err)
	}
	muts := log.Drain()
	if err := eng.Apply(muts); err != nil {
		t.Fatalf("first application of consolidation batch: %v", err)
	}
	if err := eng.Apply(muts); err == nil {
		t.Fatal("replayed consolidation batch accepted")
	}

	scratch2 := eng.Graph().Clone()
	log2 := graph.RecordInto(scratch2)
	scratch2.PutNode(graph.NewNode(corpus.Destinations[0], TypeUser))
	if err := eng.Apply(log2.Drain()); err == nil {
		t.Fatal("promotion of a linked destination node to user accepted")
	}
}
