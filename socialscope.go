// Package socialscope is the public facade of the SocialScope
// reproduction (Amer-Yahia, Lakshmanan, Yu: "SocialScope: Enabling
// Information Discovery on Social Content Sites", CIDR 2009).
//
// It wires the paper's three layers end-to-end (Figure 1):
//
//   - Content Management (internal/federation, internal/graph) keeps the
//     social content graph;
//   - Information Discovery (internal/core — the algebra, internal/analyzer,
//     internal/discovery) derives topics off-line and answers queries with
//     semantically and socially relevant results (the MSG);
//   - Information Presentation (internal/presentation) groups, ranks, and
//     explains the results.
//
// The Engine type is the integration point a downstream application uses:
//
//	corpus, _ := workload.Travel(workload.TravelConfig{Users: 100, Destinations: 50, Seed: 1})
//	eng, _ := socialscope.New(corpus.Graph, socialscope.Config{})
//	_ = eng.Analyze()
//	resp, _ := eng.Search(corpus.Users[0], "denver attractions")
//
// Commonly needed graph types are re-exported so simple applications need
// only this package.
package socialscope

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"socialscope/internal/analyzer"
	"socialscope/internal/cluster"
	"socialscope/internal/discovery"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/obs"
	"socialscope/internal/presentation"
	"socialscope/internal/topk"
)

// Re-exported graph vocabulary so applications can construct and address
// social content graphs through the facade alone.
type (
	// Graph is the social content graph (Section 4's data model).
	Graph = graph.Graph
	// Builder constructs site graphs fluently.
	Builder = graph.Builder
	// NodeID addresses a node.
	NodeID = graph.NodeID
	// LinkID addresses a link.
	LinkID = graph.LinkID
	// Node is an entity: user, item, topic or group.
	Node = graph.Node
	// Link is a connection or activity.
	Link = graph.Link
	// Mutation is one changelog entry of a graph write operation; batches
	// of them drive Engine.Apply.
	Mutation = graph.Mutation
	// Changelog accumulates mutations from recorded graph writes (see
	// graph.RecordInto); drain it into Engine.Apply to keep a live engine
	// current.
	Changelog = graph.Changelog
)

// NewGraph returns an empty social content graph.
func NewGraph() *Graph { return graph.New() }

// NewBuilder returns a fluent graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// Basic node and link types of the paper's catalog.
const (
	TypeUser    = graph.TypeUser
	TypeItem    = graph.TypeItem
	TypeTopic   = graph.TypeTopic
	TypeGroup   = graph.TypeGroup
	TypeConnect = graph.TypeConnect
	TypeAct     = graph.TypeAct
	TypeMatch   = graph.TypeMatch
	TypeBelong  = graph.TypeBelong

	SubtypeFriend = graph.SubtypeFriend
	SubtypeTag    = graph.SubtypeTag
	SubtypeVisit  = graph.SubtypeVisit
	SubtypeReview = graph.SubtypeReview
)

// TopKStrategy selects how keyword-only queries are evaluated: through the
// fusion path (off) or through the Section 6.2 activity-driven index with
// one of the internal/topk processors.
type TopKStrategy uint8

const (
	// TopKOff keeps the default BM25 + social-basis fusion path.
	TopKOff TopKStrategy = iota
	// TopKExhaustive scores every item through the index substrate — the
	// ground-truth baseline.
	TopKExhaustive
	// TopKTA runs the threshold algorithm with immediate random access.
	TopKTA
	// TopKNRA runs the deferred-random-access flavor.
	TopKNRA
)

func (s TopKStrategy) String() string {
	switch s {
	case TopKOff:
		return "off"
	case TopKExhaustive:
		return "exhaustive"
	case TopKTA:
		return "ta"
	case TopKNRA:
		return "nra"
	}
	return "unknown"
}

// ParseTopKStrategy maps a strategy name (off, exhaustive, ta, nra)
// back to a TopKStrategy.
func ParseTopKStrategy(name string) (TopKStrategy, error) {
	for _, s := range []TopKStrategy{TopKOff, TopKExhaustive, TopKTA, TopKNRA} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("socialscope: unknown top-k strategy %q", name)
}

func (s TopKStrategy) internal() topk.Strategy {
	switch s {
	case TopKTA:
		return topk.TA
	case TopKNRA:
		return topk.NRA
	}
	return topk.Exhaustive
}

// SearchStats is the query-work report of an index-backed search: the
// currency in which Section 6.2 prices index designs.
type SearchStats struct {
	Strategy        TopKStrategy
	PostingsScanned int  // sorted accesses into the posting lists
	ExactScores     int  // exact rescoring computations (random accesses)
	Candidates      int  // distinct items considered
	EarlyTerminated bool // the processor stopped before draining its lists
	// SnapshotVersion is the engine state version whose index snapshot
	// answered the query. It tracks Engine.Version(): bumped by every
	// Apply batch and by Analyze, and monotone across lazy index
	// rebuilds.
	SnapshotVersion uint64
}

// Config parameterizes an Engine.
type Config struct {
	// ItemType scopes which nodes are search candidates (default "item").
	ItemType string
	// Topics is the LDA topic count used by Analyze (default 4).
	Topics int
	// MatchThreshold is the Jaccard threshold for derived match links
	// (default 0.5, the paper's Example 5 value).
	MatchThreshold float64
	// Seed drives the analyzer's sampler (default 1).
	Seed int64
	// MaxGroups bounds the presentation (default 6).
	MaxGroups int
	// FacetAttr is the structural-grouping attribute (default "city").
	FacetAttr string
	// TopK routes keyword-only queries through the activity-driven index
	// with the selected early-termination strategy (default TopKOff: the
	// fusion path).
	TopK TopKStrategy
	// ClusterStrategy names the user clustering the index is built with:
	// peruser, network, behavior, hybrid or global (default "peruser",
	// whose stored scores are exact).
	ClusterStrategy string
	// ClusterTheta is the clustering similarity threshold θ in [0,1]
	// (ignored by peruser and global).
	ClusterTheta float64
	// Obs selects the metrics registry the engine instruments into
	// (obs.Default when nil). Handles are resolved once at construction;
	// the hot query path performs only atomic updates.
	Obs *obs.Registry
}

func (c *Config) fill() {
	if c.ItemType == "" {
		c.ItemType = graph.TypeItem
	}
	if c.Topics <= 0 {
		c.Topics = 4
	}
	if c.MatchThreshold <= 0 {
		c.MatchThreshold = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxGroups <= 0 {
		c.MaxGroups = 6
	}
	if c.FacetAttr == "" {
		c.FacetAttr = "city"
	}
	if c.ClusterStrategy == "" {
		c.ClusterStrategy = cluster.PerUser.String()
	}
}

// engineState is one immutable snapshot of everything a query touches:
// the graphs, the discoverer bound to the serving graph, and the lazily
// built index processor. Readers load it once per query and never see a
// torn version; writers (Analyze, Apply, the lazy index build) construct a
// successor under the writer lock and publish it atomically — the RCU
// discipline that lets Search run concurrently with Apply.
type engineState struct {
	base     *Graph // source graph, receives mutations
	analyzed *Graph // enriched copy produced by Analyze; nil until then
	disc     *discovery.Discoverer
	proc     *topk.Processor // nil until the first tagged query
	version  uint64          // bumped by Analyze and every Apply batch
}

// current returns the graph queries run against.
func (s *engineState) current() *Graph {
	if s.analyzed != nil {
		return s.analyzed
	}
	return s.base
}

// Engine is the end-to-end SocialScope system over one social content
// graph.
type Engine struct {
	cfg Config
	// mu serializes writers (Analyze, Apply, processor build); readers go
	// through the atomic state pointer and never block on it.
	mu    sync.Mutex
	state atomic.Pointer[engineState]
	// statsMu guards the last-query work report, written on the query path
	// and read by LastSearchStats.
	statsMu  sync.Mutex
	stats    SearchStats // work report of the last index-backed query
	hasStats bool
	// dur is the durability state (WAL + checkpointer) for engines opened
	// with OpenDurable, nil otherwise. Guarded by mu.
	dur *durable
	// fol is the replication state for engines opened with OpenFollower,
	// nil otherwise. Guarded by mu; Promote clears it and sets dur.
	fol *follower
	// isFol mirrors fol != nil for lock-free role checks: a health
	// endpoint must not block behind a long catch-up or analyze.
	isFol atomic.Bool
	// met holds the pre-resolved metric handles (see observe.go); set by
	// every constructor before the first state publish.
	met *engineMetrics
}

// IsFollower reports whether the engine is a read-only follower (opened
// with OpenFollower and not yet promoted). Safe to call concurrently
// with CatchUp and queries.
func (e *Engine) IsFollower() bool { return e.isFol.Load() }

// New builds an engine over the graph. The graph is used as-is (not
// copied) until the first Apply, which switches the engine onto private
// copy-on-write versions; Analyze produces an enriched copy and re-targets
// discovery at it.
func New(g *Graph, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("socialscope: nil graph")
	}
	cfg.fill()
	e := &Engine{cfg: cfg, met: newEngineMetrics(cfg.Obs)}
	e.publish(&engineState{
		base: g,
		disc: discovery.NewDiscoverer(g, cfg.ItemType),
	})
	return e, nil
}

// Graph returns the graph queries currently run against (the enriched one
// after Analyze).
func (e *Engine) Graph() *Graph { return e.state.Load().current() }

// Version returns the engine's state version: 0 at construction, bumped
// by Analyze and by every Apply batch.
func (e *Engine) Version() uint64 { return e.state.Load().version }

// Analyzed reports whether the engine is serving from an enriched
// (analyzer-derived) graph.
func (e *Engine) Analyzed() bool { return e.state.Load().analyzed != nil }

// Analyze runs the Content Analyzer: LDA topic derivation over the item
// nodes and Jaccard match derivation between users. The engine then serves
// queries from the enriched graph. Idempotent: re-running re-derives from
// the engine's current base graph (the original plus any applied
// mutations).
func (e *Engine) Analyze() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fol != nil {
		return ErrFollower
	}
	return e.analyzeLocked(true)
}

// analyzeLocked is Analyze's body; callers hold e.mu. live is false
// during WAL replay, when the record driving this call is already
// durable and must not be re-logged.
func (e *Engine) analyzeLocked(live bool) error {
	st := e.state.Load()
	withTopics, _, err := analyzer.DeriveTopics(st.base, e.cfg.ItemType, analyzer.LDAConfig{
		Topics: e.cfg.Topics, Seed: e.cfg.Seed, Alpha: 0.1,
	})
	if err != nil {
		return fmt.Errorf("socialscope: topic derivation: %w", err)
	}
	enriched := analyzer.DeriveMatches(withTopics, e.cfg.MatchThreshold)
	// The derivation is deterministic (seeded LDA over the base graph), so
	// the WAL marker carries no payload; replay re-derives. The record is
	// durable before the state is visible.
	if live {
		if err := e.logRecord(recAnalyze, nil); err != nil {
			return err
		}
	}
	e.publish(&engineState{
		base:     st.base,
		analyzed: enriched,
		disc:     discovery.NewDiscoverer(enriched, e.cfg.ItemType),
		proc:     nil, // the index must be rebuilt over the enriched graph
		version:  st.version + 1,
	})
	return nil
}

// Apply folds a batch of graph mutations — typically drained from a
// graph.Changelog — into the live engine without a stop-the-world
// rebuild. The batch is applied atomically: the serving graph is advanced
// through copy-on-write clones, the activity-driven index absorbs the
// delta through index.ApplyDelta snapshots, and the new state is published
// in one atomic store. Queries already in flight keep reading the previous
// snapshot; queries starting after Apply returns see the whole batch.
//
// On error nothing is published and the engine keeps serving the prior
// state.
//
// Mutations must describe changes the engine has not seen: record them on
// a scratch copy of the site graph (graph.RecordInto over Clone), or
// construct them directly — never on the engine's own serving graph,
// which readers may be walking concurrently and whose contents the index
// may already reflect. Additions already present in the serving graph are
// rejected with an error rather than silently double-counted.
//
// Cost note: a batch costs O(delta) end-to-end. Graph and index storage
// is persistent (structurally shared), so the per-batch snapshots —
// graph ShallowClone, index substrate clone, posting-list index share —
// are O(1) header copies, and the remaining work is proportional to the
// mutations applied: touched trie paths, tag shards, posting lists and
// inner sets. The discovery corpus is reused across batches that touch
// no item node (and rebuilt lazily otherwise), so nothing on this path
// scales with graph size. Batching still amortizes per-call constants,
// but one-mutation batches are no longer penalized by corpus-sized
// copies.
//
// Batch size also selects the storage write mode, adaptively: batches of
// graph.BulkApplyThreshold (== index.BulkDeltaThreshold) mutations or
// more run their graph replay and index delta inside a transient window
// (persist bulk mode) that mutates batch-private trie nodes in place
// instead of path-copying per write — several-fold less allocation on
// catch-up and migration sized batches. Smaller batches keep the pure
// persistent path untouched. The choice is invisible to readers either
// way: the transient window is born and sealed inside this call, before
// the new state is published, so in-flight queries and O(1) snapshots
// behave identically under both modes.
func (e *Engine) Apply(muts []graph.Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fol != nil {
		return ErrFollower
	}
	return e.applyLocked(muts, true)
}

// applyLocked is Apply's body; callers hold e.mu. live is false during
// WAL replay, when the batch comes from an already-durable record and
// must be neither re-logged nor re-checkpointed.
func (e *Engine) applyLocked(muts []graph.Mutation, live bool) error {
	st := e.state.Load()
	// Validate additions against the graphs the batch will land on. IDs
	// already present — except ones an earlier mutation in this same
	// batch removes — are rejected loudly: replaying an absorbed change
	// would double-count its activity in the index's duplicate refcounts,
	// and colliding with an analyzer-derived element (Analyze allocates
	// ids past the base maxima) would silently merge unrelated entities.
	// Duplicate additions *within* the batch are rejected for the same
	// reason: graph replay would silently consolidate the second add while
	// the index delta counted both — the shape two concurrent writers
	// produce when they allocate the same fresh id (e.g. both reading one
	// max-id snapshot) and their batches are coalesced.
	removedNodes := make(map[NodeID]bool)
	removedLinks := make(map[LinkID]bool)
	addedNodes := make(map[NodeID]bool)
	addedLinks := make(map[LinkID]bool)
	present := func(hasBase, hasAnalyzed bool) string {
		switch {
		case hasBase:
			return "the engine's graph — record mutations on a scratch copy (graph.RecordInto over Clone), not on the serving graph"
		case hasAnalyzed:
			return "the analyzed graph — allocate fresh ids past graph.IDSourceFor(eng.Graph()) after Analyze"
		}
		return ""
	}
	for i, m := range muts {
		switch m.Kind {
		case graph.MutRemoveNode:
			if m.Node != nil {
				removedNodes[m.Node.ID] = true
				delete(addedNodes, m.Node.ID)
			}
		case graph.MutRemoveLink:
			if m.Link != nil {
				removedLinks[m.Link.ID] = true
				delete(addedLinks, m.Link.ID)
			}
		case graph.MutAddLink:
			if m.Link == nil {
				continue
			}
			if addedLinks[m.Link.ID] {
				return fmt.Errorf("socialscope: apply: mutation %d adds link %d already added earlier "+
					"in the batch — concurrent writers must allocate distinct ids", i, m.Link.ID)
			}
			if removedLinks[m.Link.ID] {
				delete(removedLinks, m.Link.ID)
				addedLinks[m.Link.ID] = true
				continue
			}
			if where := present(st.base.HasLink(m.Link.ID),
				st.analyzed != nil && st.analyzed.HasLink(m.Link.ID)); where != "" {
				return fmt.Errorf("socialscope: apply: mutation %d adds link %d already present in %s",
					i, m.Link.ID, where)
			}
			addedLinks[m.Link.ID] = true
		case graph.MutAddNode:
			if m.Node == nil {
				continue
			}
			if addedNodes[m.Node.ID] {
				return fmt.Errorf("socialscope: apply: mutation %d adds node %d already added earlier "+
					"in the batch — concurrent writers must allocate distinct ids", i, m.Node.ID)
			}
			if removedNodes[m.Node.ID] {
				delete(removedNodes, m.Node.ID)
				addedNodes[m.Node.ID] = true
				continue
			}
			if where := present(st.base.HasNode(m.Node.ID),
				st.analyzed != nil && st.analyzed.HasNode(m.Node.ID)); where != "" {
				return fmt.Errorf("socialscope: apply: mutation %d adds node %d already present in %s",
					i, m.Node.ID, where)
			}
			addedNodes[m.Node.ID] = true
		case graph.MutPutNode:
			// Promoting an already-linked non-user node to user cannot be
			// maintained incrementally: the index would have to discover
			// the node's pre-existing connections and taggings, which
			// mutations do not carry. Reject rather than silently diverge
			// from a rebuild.
			if m.Node == nil || !m.Node.HasType(graph.TypeUser) || removedNodes[m.Node.ID] {
				continue
			}
			if ex := st.base.Node(m.Node.ID); ex != nil && !ex.HasType(graph.TypeUser) &&
				st.base.OutDegree(m.Node.ID)+st.base.InDegree(m.Node.ID) > 0 {
				return fmt.Errorf("socialscope: apply: mutation %d promotes linked node %d to a user — "+
					"incremental maintenance cannot recover its existing links; rebuild instead "+
					"(new Engine or Analyze)", i, m.Node.ID)
			}
		case graph.MutPutLink:
			// Replay detection: a consolidation that records a real diff
			// (Prev != Link) but whose post-merge state the serving graph
			// already holds was applied before; replaying it would
			// double-count the diffed activities in the index refcounts.
			if m.Link == nil || m.Prev == nil || m.Prev.Equal(m.Link) || removedLinks[m.Link.ID] {
				continue
			}
			if ex := st.base.Link(m.Link.ID); ex != nil && ex.Equal(m.Link) {
				return fmt.Errorf("socialscope: apply: mutation %d replays consolidation of link %d "+
					"already absorbed by the engine — drain each changelog into Apply exactly once",
					i, m.Link.ID)
			}
		}
	}
	ns := &engineState{version: st.version + 1}

	ns.base = st.base.ShallowClone()
	if err := ns.base.ApplyAll(muts); err != nil {
		return fmt.Errorf("socialscope: apply: %w", err)
	}
	if st.analyzed != nil {
		ns.analyzed = st.analyzed.ShallowClone()
		if err := ns.analyzed.ApplyAll(muts); err != nil {
			return fmt.Errorf("socialscope: apply to analyzed graph: %w", err)
		}
	}
	// Rebind discovery to the new serving graph. The BM25 item corpus is
	// an O(items) aggregate, so it is carried over (O(1)) unless the batch
	// touches an item node's text — the only thing that can change it.
	if batchTouchesItems(muts, st.base, e.cfg.ItemType) {
		ns.disc = discovery.NewDiscoverer(ns.current(), e.cfg.ItemType)
	} else {
		ns.disc = st.disc.WithGraph(ns.current())
	}
	if st.proc != nil {
		proc, err := topk.New(st.proc.Index().ApplyDelta(muts), nil)
		if err != nil {
			return fmt.Errorf("socialscope: %w", err)
		}
		ns.proc = proc
	}
	// Durability barrier: the batch is on disk before the state readers
	// can observe becomes current. A WAL failure leaves the engine on the
	// prior state; the log heals its tail on the next append.
	if live {
		if err := e.logRecord(recBatch, graph.AppendMutations(nil, muts)); err != nil {
			return err
		}
	}
	e.publish(ns)
	e.met.applies.Inc()
	e.met.applyBatch.Observe(float64(len(muts)))
	e.maybeCheckpointLocked(live)
	return nil
}

// batchTouchesItems reports whether any mutation in the batch adds,
// consolidates or removes a node carrying the engine's item type — the
// mutations that can change the searchable item corpus. The payload's
// types are not enough: a partial consolidation (or a bare removal) may
// target an existing item node without re-stating its types, so the
// node's resident state in the pre-batch graph is consulted too.
func batchTouchesItems(muts []graph.Mutation, base *Graph, itemType string) bool {
	for _, m := range muts {
		switch m.Kind {
		case graph.MutAddNode, graph.MutPutNode, graph.MutRemoveNode:
			if m.Node == nil {
				continue
			}
			if m.Node.HasType(itemType) {
				return true
			}
			if ex := base.Node(m.Node.ID); ex != nil && ex.HasType(itemType) {
				return true
			}
		}
	}
	return false
}

// ensureProcessor returns a state whose index processor is built, lazily
// constructing the activity-driven index over the current graph on first
// use.
func (e *Engine) ensureProcessor() (*engineState, error) {
	if st := e.state.Load(); st.proc != nil {
		return st, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.state.Load()
	if st.proc != nil { // raced with another builder
		return st, nil
	}
	strat, err := cluster.ParseStrategy(e.cfg.ClusterStrategy)
	if err != nil {
		return nil, fmt.Errorf("socialscope: %w", err)
	}
	cl, err := cluster.Build(st.current(), strat, e.cfg.ClusterTheta)
	if err != nil {
		return nil, fmt.Errorf("socialscope: clustering: %w", err)
	}
	ix, err := index.Build(index.Extract(st.current()), cl, nil)
	if err != nil {
		return nil, fmt.Errorf("socialscope: index build: %w", err)
	}
	// Seed the fresh index with the engine's state version so query stats
	// keep reporting a monotone SnapshotVersion across lazy rebuilds
	// (Analyze discards the processor; Apply batches before the first
	// tagged query advance the state without an index to advance).
	proc, err := topk.New(ix.AtVersion(st.version), nil)
	if err != nil {
		return nil, fmt.Errorf("socialscope: %w", err)
	}
	ns := &engineState{
		base:     st.base,
		analyzed: st.analyzed,
		disc:     st.disc,
		proc:     proc,
		version:  st.version,
	}
	e.publish(ns)
	return ns, nil
}

// LastSearchStats reports the work of the most recent index-backed query
// (false while no tagged query ran yet or TopK is off). Safe to call
// concurrently with Search and Apply.
func (e *Engine) LastSearchStats() (SearchStats, bool) {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats, e.hasStats
}

// Response is a complete answer: the MSG from the discovery layer and the
// organized presentation with per-item explanations.
type Response struct {
	MSG          *discovery.MSG
	Presentation presentation.Presentation
	// Explanations maps each result item to its CF explanation.
	Explanations map[NodeID]presentation.Explanation
	// Related holds Example 3's onward exploration: topics and users
	// adjacent to the result set.
	Related discovery.Related
	// Stats is this evaluation's own work report when the query went
	// through the activity-driven index, nil otherwise. Unlike
	// LastSearchStats — a last-writer-wins engine-wide report — it is
	// race-free under concurrent queries, which the serving layer's
	// response cache relies on for deterministic bodies.
	Stats *SearchStats
	// Version is the engine state version this response was evaluated
	// against — exact even when a concurrent Apply advances the engine
	// mid-evaluation, because the whole evaluation reads one snapshot.
	Version uint64
}

// Results returns the ranked discovery results.
func (r *Response) Results() []discovery.Result { return r.MSG.Results }

// Search parses and answers a query for the user: discovery followed by
// presentation. An empty query string yields pure social recommendations
// (the paper's empty-query semantics).
func (e *Engine) Search(user NodeID, query string) (*Response, error) {
	return e.SearchCtx(context.Background(), user, query)
}

// SearchCtx is Search under a context: the evaluation is abandoned with
// ctx.Err() once the context is cancelled — inside the index-backed
// top-k accumulation loops (see topk.TopKCtx), and on the fusion path at
// each stage boundary (discovery → presentation → per-item explanations)
// plus between explanations; the fusion scoring stage itself runs to
// completion. A serving layer's per-request deadline therefore bounds
// index-backed query work tightly and fusion work at stage granularity.
func (e *Engine) SearchCtx(ctx context.Context, user NodeID, query string) (*Response, error) {
	q, err := discovery.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return e.QueryCtx(ctx, user, q)
}

// Query answers a parsed query. Keyword-only queries go through the
// activity-driven index when Config.TopK selects a strategy; everything
// else (structural predicates, empty queries) uses the fusion path. The
// whole evaluation — discovery, presentation, explanations — reads one
// state snapshot, so a concurrent Apply can never show it half a batch.
func (e *Engine) Query(user NodeID, q discovery.Query) (*Response, error) {
	return e.QueryCtx(context.Background(), user, q)
}

// QueryCtx is Query under a context; see SearchCtx for the cancellation
// contract.
func (e *Engine) QueryCtx(ctx context.Context, user NodeID, q discovery.Query) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.SpanFrom(ctx)
	st := e.state.Load()
	var msg *discovery.MSG
	var err error
	var evalStats *SearchStats
	discoverDone := sp.Stage("discovery")
	if e.cfg.TopK != TopKOff && len(q.Keywords) > 0 && len(q.Structural) == 0 {
		st, err = e.ensureProcessor()
		if err != nil {
			return nil, err
		}
		var ts topk.Stats
		msg, ts, err = st.disc.DiscoverTaggedCtx(ctx, user, q, st.proc, e.cfg.TopK.internal())
		if err != nil {
			return nil, err
		}
		evalStats = &SearchStats{
			Strategy:        e.cfg.TopK,
			PostingsScanned: ts.PostingsScanned,
			ExactScores:     ts.ExactScores,
			Candidates:      ts.Candidates,
			EarlyTerminated: ts.EarlyTerminated,
			SnapshotVersion: ts.SnapshotVersion,
		}
		e.statsMu.Lock()
		e.stats = *evalStats
		e.hasStats = true
		e.statsMu.Unlock()
	} else {
		msg, err = st.disc.Discover(user, q)
	}
	if err != nil {
		return nil, err
	}
	discoverDone()
	e.recordQuery(sp, evalStats, st.version)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := st.current()
	resp := &Response{
		MSG:          msg,
		Explanations: make(map[NodeID]presentation.Explanation),
		Stats:        evalStats,
		Version:      st.version,
	}
	if len(msg.Results) == 0 {
		return resp, nil
	}
	items := make([]NodeID, len(msg.Results))
	scores := make(map[NodeID]float64, len(msg.Results))
	for i, r := range msg.Results {
		items[i] = r.Item
		scores[r.Item] = r.Score
	}
	presentDone := sp.Stage("presentation")
	pres, err := presentation.Organize(g, items, scores, presentation.OrganizeConfig{
		MaxGroups: e.cfg.MaxGroups,
		FacetAttr: e.cfg.FacetAttr,
	})
	if err != nil {
		return nil, err
	}
	resp.Presentation = pres
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp.Explanations[it] = presentation.ExplainCF(g, user, it)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp.Related = discovery.RelatedEntities(g, msg, 2, 5)
	presentDone()
	return resp, nil
}

// Recommend runs pure collaborative filtering (Example 5) for the user.
func (e *Engine) Recommend(user NodeID, variant discovery.CFVariant) ([]discovery.Recommendation, error) {
	return e.RecommendCtx(context.Background(), user, variant)
}

// RecommendCtx is Recommend under a context. Collaborative filtering is
// one algebra program without an incremental accumulation loop, so the
// context is checked at the call boundary; the per-request deadline still
// rejects work that arrives already expired.
func (e *Engine) RecommendCtx(ctx context.Context, user NodeID, variant discovery.CFVariant) ([]discovery.Recommendation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return discovery.CollaborativeFiltering(e.Graph(), user, discovery.CFConfig{
		SimThreshold: e.cfg.MatchThreshold,
		Variant:      variant,
		ItemType:     e.cfg.ItemType,
	})
}

// ClusterOf reports the activity-index cluster the user belongs to, and
// whether that partition exists at all: false when the engine runs with
// TopK off (the fusion path has no clustering), when the index cannot be
// built, or when the user is unknown to the partition. A serving layer
// uses it to key per-cluster result caching — under the default peruser
// strategy every user is their own cluster, so cluster-granular sharing
// degenerates to exactly per-user sharing.
func (e *Engine) ClusterOf(user NodeID) (int, bool) {
	if e.cfg.TopK == TopKOff {
		return 0, false
	}
	st, err := e.ensureProcessor()
	if err != nil {
		return 0, false
	}
	cl := st.proc.Index().Clustering().Of(user)
	if cl < 0 {
		return 0, false
	}
	return cl, true
}

// CacheScope returns an opaque key component identifying the widest set
// of users guaranteed byte-identical responses for identical queries
// against one engine version — the sharing granularity a result cache
// may use. The component is the user's activity-index cluster where one
// exists; under the default peruser strategy the cluster is the user
// (stored scores are exact per user), so the bare cluster id suffices,
// while coarser strategies refine the scope by the user id because exact
// rescoring, endorser provenance and explanations remain user-specific
// within a cluster. Without a clustering (TopK off, unknown user) the
// scope is the user alone.
func (e *Engine) CacheScope(user NodeID) string {
	if cl, ok := e.ClusterOf(user); ok {
		if e.cfg.ClusterStrategy == cluster.PerUser.String() {
			return fmt.Sprintf("c%d", cl)
		}
		return fmt.Sprintf("c%d.u%d", cl, user)
	}
	return fmt.Sprintf("u%d", user)
}
