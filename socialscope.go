// Package socialscope is the public facade of the SocialScope
// reproduction (Amer-Yahia, Lakshmanan, Yu: "SocialScope: Enabling
// Information Discovery on Social Content Sites", CIDR 2009).
//
// It wires the paper's three layers end-to-end (Figure 1):
//
//   - Content Management (internal/federation, internal/graph) keeps the
//     social content graph;
//   - Information Discovery (internal/core — the algebra, internal/analyzer,
//     internal/discovery) derives topics off-line and answers queries with
//     semantically and socially relevant results (the MSG);
//   - Information Presentation (internal/presentation) groups, ranks, and
//     explains the results.
//
// The Engine type is the integration point a downstream application uses:
//
//	corpus, _ := workload.Travel(workload.TravelConfig{Users: 100, Destinations: 50, Seed: 1})
//	eng, _ := socialscope.New(corpus.Graph, socialscope.Config{})
//	_ = eng.Analyze()
//	resp, _ := eng.Search(corpus.Users[0], "denver attractions")
//
// Commonly needed graph types are re-exported so simple applications need
// only this package.
package socialscope

import (
	"fmt"
	"sync"

	"socialscope/internal/analyzer"
	"socialscope/internal/cluster"
	"socialscope/internal/discovery"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/presentation"
	"socialscope/internal/topk"
)

// Re-exported graph vocabulary so applications can construct and address
// social content graphs through the facade alone.
type (
	// Graph is the social content graph (Section 4's data model).
	Graph = graph.Graph
	// Builder constructs site graphs fluently.
	Builder = graph.Builder
	// NodeID addresses a node.
	NodeID = graph.NodeID
	// LinkID addresses a link.
	LinkID = graph.LinkID
	// Node is an entity: user, item, topic or group.
	Node = graph.Node
	// Link is a connection or activity.
	Link = graph.Link
)

// NewGraph returns an empty social content graph.
func NewGraph() *Graph { return graph.New() }

// NewBuilder returns a fluent graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// Basic node and link types of the paper's catalog.
const (
	TypeUser    = graph.TypeUser
	TypeItem    = graph.TypeItem
	TypeTopic   = graph.TypeTopic
	TypeGroup   = graph.TypeGroup
	TypeConnect = graph.TypeConnect
	TypeAct     = graph.TypeAct
	TypeMatch   = graph.TypeMatch
	TypeBelong  = graph.TypeBelong

	SubtypeFriend = graph.SubtypeFriend
	SubtypeTag    = graph.SubtypeTag
	SubtypeVisit  = graph.SubtypeVisit
	SubtypeReview = graph.SubtypeReview
)

// TopKStrategy selects how keyword-only queries are evaluated: through the
// fusion path (off) or through the Section 6.2 activity-driven index with
// one of the internal/topk processors.
type TopKStrategy uint8

const (
	// TopKOff keeps the default BM25 + social-basis fusion path.
	TopKOff TopKStrategy = iota
	// TopKExhaustive scores every item through the index substrate — the
	// ground-truth baseline.
	TopKExhaustive
	// TopKTA runs the threshold algorithm with immediate random access.
	TopKTA
	// TopKNRA runs the deferred-random-access flavor.
	TopKNRA
)

func (s TopKStrategy) String() string {
	switch s {
	case TopKOff:
		return "off"
	case TopKExhaustive:
		return "exhaustive"
	case TopKTA:
		return "ta"
	case TopKNRA:
		return "nra"
	}
	return "unknown"
}

func (s TopKStrategy) internal() topk.Strategy {
	switch s {
	case TopKTA:
		return topk.TA
	case TopKNRA:
		return topk.NRA
	}
	return topk.Exhaustive
}

// SearchStats is the query-work report of an index-backed search: the
// currency in which Section 6.2 prices index designs.
type SearchStats struct {
	Strategy        TopKStrategy
	PostingsScanned int  // sorted accesses into the posting lists
	ExactScores     int  // exact rescoring computations (random accesses)
	Candidates      int  // distinct items considered
	EarlyTerminated bool // the processor stopped before draining its lists
}

// Config parameterizes an Engine.
type Config struct {
	// ItemType scopes which nodes are search candidates (default "item").
	ItemType string
	// Topics is the LDA topic count used by Analyze (default 4).
	Topics int
	// MatchThreshold is the Jaccard threshold for derived match links
	// (default 0.5, the paper's Example 5 value).
	MatchThreshold float64
	// Seed drives the analyzer's sampler (default 1).
	Seed int64
	// MaxGroups bounds the presentation (default 6).
	MaxGroups int
	// FacetAttr is the structural-grouping attribute (default "city").
	FacetAttr string
	// TopK routes keyword-only queries through the activity-driven index
	// with the selected early-termination strategy (default TopKOff: the
	// fusion path).
	TopK TopKStrategy
	// ClusterStrategy names the user clustering the index is built with:
	// peruser, network, behavior, hybrid or global (default "peruser",
	// whose stored scores are exact).
	ClusterStrategy string
	// ClusterTheta is the clustering similarity threshold θ in [0,1]
	// (ignored by peruser and global).
	ClusterTheta float64
}

func (c *Config) fill() {
	if c.ItemType == "" {
		c.ItemType = graph.TypeItem
	}
	if c.Topics <= 0 {
		c.Topics = 4
	}
	if c.MatchThreshold <= 0 {
		c.MatchThreshold = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxGroups <= 0 {
		c.MaxGroups = 6
	}
	if c.FacetAttr == "" {
		c.FacetAttr = "city"
	}
	if c.ClusterStrategy == "" {
		c.ClusterStrategy = cluster.PerUser.String()
	}
}

// Engine is the end-to-end SocialScope system over one social content
// graph.
type Engine struct {
	cfg      Config
	g        *Graph
	analyzed *Graph // graph enriched by Analyze; nil until then
	disc     *discovery.Discoverer
	// mu guards the lazily built processor and the last-query stats, the
	// only Engine state Query mutates — queries stay safe to serve from
	// multiple goroutines.
	mu       sync.Mutex
	proc     *topk.Processor // lazily built index processor; nil until first tagged query
	stats    SearchStats     // work report of the last index-backed query
	hasStats bool
}

// New builds an engine over the graph. The graph is used as-is (not
// copied); Analyze produces an enriched copy and re-targets discovery at
// it.
func New(g *Graph, cfg Config) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("socialscope: nil graph")
	}
	cfg.fill()
	return &Engine{
		cfg:  cfg,
		g:    g,
		disc: discovery.NewDiscoverer(g, cfg.ItemType),
	}, nil
}

// Graph returns the graph queries currently run against (the enriched one
// after Analyze).
func (e *Engine) Graph() *Graph {
	if e.analyzed != nil {
		return e.analyzed
	}
	return e.g
}

// Analyze runs the Content Analyzer: LDA topic derivation over the item
// nodes and Jaccard match derivation between users. The engine then serves
// queries from the enriched graph. Idempotent: re-running re-derives from
// the original graph.
func (e *Engine) Analyze() error {
	withTopics, _, err := analyzer.DeriveTopics(e.g, e.cfg.ItemType, analyzer.LDAConfig{
		Topics: e.cfg.Topics, Seed: e.cfg.Seed, Alpha: 0.1,
	})
	if err != nil {
		return fmt.Errorf("socialscope: topic derivation: %w", err)
	}
	enriched := analyzer.DeriveMatches(withTopics, e.cfg.MatchThreshold)
	e.analyzed = enriched
	e.disc = discovery.NewDiscoverer(enriched, e.cfg.ItemType)
	e.mu.Lock()
	e.proc = nil // the index must be rebuilt over the enriched graph
	e.mu.Unlock()
	return nil
}

// ensureProcessor lazily builds the activity-driven index over the current
// graph and wraps it in a top-k processor.
func (e *Engine) ensureProcessor() (*topk.Processor, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.proc != nil {
		return e.proc, nil
	}
	strat, err := cluster.ParseStrategy(e.cfg.ClusterStrategy)
	if err != nil {
		return nil, fmt.Errorf("socialscope: %w", err)
	}
	cl, err := cluster.Build(e.Graph(), strat, e.cfg.ClusterTheta)
	if err != nil {
		return nil, fmt.Errorf("socialscope: clustering: %w", err)
	}
	ix, err := index.Build(index.Extract(e.Graph()), cl, nil)
	if err != nil {
		return nil, fmt.Errorf("socialscope: index build: %w", err)
	}
	proc, err := topk.New(ix, nil)
	if err != nil {
		return nil, fmt.Errorf("socialscope: %w", err)
	}
	e.proc = proc
	return proc, nil
}

// LastSearchStats reports the work of the most recent index-backed query
// (false while no tagged query ran yet or TopK is off).
func (e *Engine) LastSearchStats() (SearchStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats, e.hasStats
}

// Response is a complete answer: the MSG from the discovery layer and the
// organized presentation with per-item explanations.
type Response struct {
	MSG          *discovery.MSG
	Presentation presentation.Presentation
	// Explanations maps each result item to its CF explanation.
	Explanations map[NodeID]presentation.Explanation
	// Related holds Example 3's onward exploration: topics and users
	// adjacent to the result set.
	Related discovery.Related
}

// Results returns the ranked discovery results.
func (r *Response) Results() []discovery.Result { return r.MSG.Results }

// Search parses and answers a query for the user: discovery followed by
// presentation. An empty query string yields pure social recommendations
// (the paper's empty-query semantics).
func (e *Engine) Search(user NodeID, query string) (*Response, error) {
	q, err := discovery.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return e.Query(user, q)
}

// Query answers a parsed query. Keyword-only queries go through the
// activity-driven index when Config.TopK selects a strategy; everything
// else (structural predicates, empty queries) uses the fusion path.
func (e *Engine) Query(user NodeID, q discovery.Query) (*Response, error) {
	var msg *discovery.MSG
	var err error
	if e.cfg.TopK != TopKOff && len(q.Keywords) > 0 && len(q.Structural) == 0 {
		var proc *topk.Processor
		proc, err = e.ensureProcessor()
		if err != nil {
			return nil, err
		}
		var st topk.Stats
		msg, st, err = e.disc.DiscoverTagged(user, q, proc, e.cfg.TopK.internal())
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.stats = SearchStats{
			Strategy:        e.cfg.TopK,
			PostingsScanned: st.PostingsScanned,
			ExactScores:     st.ExactScores,
			Candidates:      st.Candidates,
			EarlyTerminated: st.EarlyTerminated,
		}
		e.hasStats = true
		e.mu.Unlock()
	} else {
		msg, err = e.disc.Discover(user, q)
	}
	if err != nil {
		return nil, err
	}
	resp := &Response{MSG: msg, Explanations: make(map[NodeID]presentation.Explanation)}
	if len(msg.Results) == 0 {
		return resp, nil
	}
	items := make([]NodeID, len(msg.Results))
	scores := make(map[NodeID]float64, len(msg.Results))
	for i, r := range msg.Results {
		items[i] = r.Item
		scores[r.Item] = r.Score
	}
	pres, err := presentation.Organize(e.Graph(), items, scores, presentation.OrganizeConfig{
		MaxGroups: e.cfg.MaxGroups,
		FacetAttr: e.cfg.FacetAttr,
	})
	if err != nil {
		return nil, err
	}
	resp.Presentation = pres
	for _, it := range items {
		resp.Explanations[it] = presentation.ExplainCF(e.Graph(), user, it)
	}
	resp.Related = discovery.RelatedEntities(e.Graph(), msg, 2, 5)
	return resp, nil
}

// Recommend runs pure collaborative filtering (Example 5) for the user.
func (e *Engine) Recommend(user NodeID, variant discovery.CFVariant) ([]discovery.Recommendation, error) {
	return discovery.CollaborativeFiltering(e.Graph(), user, discovery.CFConfig{
		SimThreshold: e.cfg.MatchThreshold,
		Variant:      variant,
		ItemType:     e.cfg.ItemType,
	})
}
