package socialscope

import (
	"testing"

	"socialscope/internal/discovery"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/presentation"
	"socialscope/internal/store"
	"socialscope/internal/workload"
)

// TestStoreBackedEngine exercises the full Content Management → Discovery
// → Presentation stack with durable storage underneath: generate a site,
// persist it through the Data Manager's store, crash-recover it, and run
// queries against the recovered graph.
func TestStoreBackedEngine(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{Users: 30, Destinations: 20, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range corpus.Graph.Nodes() {
		if err := s.PutNode(n.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range corpus.Graph.Links() {
		if err := s.PutLink(l.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover and serve.
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	g, err := s2.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(corpus.Graph) {
		t.Fatal("recovered graph differs from the generated one")
	}
	eng, err := New(g, Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Search(corpus.Users[0], "attractions")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results()) == 0 {
		t.Error("no results from the recovered site")
	}
}

// TestHierarchicalPresentation drives the zoomable tree over real engine
// output — the Section 7.1 hierarchical presentation model end to end.
func TestHierarchicalPresentation(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{Users: 60, Destinations: 40, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(corpus.Graph, Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Search(corpus.Users[0], "attractions")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results()) < 2 {
		t.Skip("corpus produced too few results to zoom")
	}
	items := make([]graph.NodeID, 0, len(resp.Results()))
	scores := map[graph.NodeID]float64{}
	for _, r := range resp.Results() {
		items = append(items, r.Item)
		scores[r.Item] = r.Score
	}
	tree, err := presentation.BuildTree(eng.Graph(), items, scores, presentation.OrganizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Root.Children) == 0 {
		t.Fatal("no top-level groups")
	}
	if err := tree.ZoomIn(tree.Root.Children[0].Group.Label); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Error("zoom depth wrong")
	}
	tree.ZoomOut()

	// Diversification keeps the head and reduces redundancy.
	div := presentation.Diversify(eng.Graph(), items, scores, 0.6, 5)
	if len(div) == 0 || len(div) > 5 {
		t.Errorf("diversified = %v", div)
	}
}

// TestAnalyzeThenIndexConsistency runs the Content Analyzer and §6.2 index
// over the same corpus: derived structures must not disturb index answers
// (topics and matches are new nodes/links the extractor ignores).
func TestAnalyzeThenIndexConsistency(t *testing.T) {
	corpus, err := workload.Tagging(workload.TaggingConfig{Users: 25, Items: 40, Tags: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(corpus.Graph, Config{ItemType: graph.TypeItem, Topics: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	// The enriched graph gained topic nodes and match links, but tagging
	// substrate extraction sees the same users/items/tags.
	before := extractCounts(t, corpus.Graph)
	after := extractCounts(t, eng.Graph())
	if before != after {
		t.Errorf("analysis disturbed the tagging substrate: %v vs %v", before, after)
	}
}

func extractCounts(t *testing.T, g *graph.Graph) [3]int {
	t.Helper()
	d := indexExtract(g)
	return [3]int{len(d.Users), len(d.Items), len(d.Tags)}
}

// indexExtract avoids importing internal/index at the top for one helper.
func indexExtract(g *graph.Graph) *index.Data { return index.Extract(g) }

// TestFusionRecoversPlantedInterests is the paper's central integration
// thesis as a regression test: on a homophilous corpus with planted
// interests, a general query answered with fused semantic+social relevance
// must beat keyword search alone by a wide margin (we require 3×; the
// reference run shows ~12×).
func TestFusionRecoversPlantedInterests(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 100, Destinations: 60, Seed: 42, VisitsPerUser: 8, InterestBias: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := discovery.NewDiscoverer(corpus.Graph, "destination")
	precision := func(alpha float64) float64 {
		var total float64
		n := 0
		for _, u := range corpus.Users[:40] {
			q, err := discovery.ParseQuery("attractions")
			if err != nil {
				t.Fatal(err)
			}
			q.Alpha = alpha
			q.K = 5
			msg, err := d.Discover(u, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(msg.Results) == 0 {
				continue
			}
			cat := corpus.Interests[u]
			hit := 0
			for _, r := range msg.Results {
				if corpus.Graph.Node(r.Item).Attrs.Get("category") == cat {
					hit++
				}
			}
			total += float64(hit) / float64(len(msg.Results))
			n++
		}
		if n == 0 {
			t.Fatal("no measurable users")
		}
		return total / float64(n)
	}
	searchOnly := precision(1.0)
	fused := precision(0.5)
	if fused < 3*searchOnly {
		t.Errorf("fusion P@5 %.3f should be ≥ 3× search-only %.3f", fused, searchOnly)
	}
}
