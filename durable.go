package socialscope

// Durability: write-ahead logging and checkpointing for the engine.
//
// Every Apply batch is encoded and fsynced to the WAL *before* the new
// state is published; Analyze appends a marker record (the derivation
// is deterministic given the base graph and Config, so the record
// carries no payload). Checkpoints capture the base and analyzed graphs
// through structural-sharing deltas (internal/store) together with the
// engine version and the WAL position they cover; recovery loads the
// latest checkpoint chain and replays the WAL tail through the same
// Apply/Analyze code paths that produced it, so a recovered engine
// resumes at exactly the version and state the last acknowledged write
// left behind.
//
// Guarantee: when Apply (or Analyze) returns nil on a durable engine,
// the change survives a crash. The converse is one-directional — a
// batch whose Apply errored mid-sync may still be on disk and will
// replay after a crash, which is safe: it was validated before logging,
// and replay applies a consistent prefix of attempted writes.

import (
	"fmt"
	"path"

	"socialscope/internal/discovery"
	"socialscope/internal/graph"
	"socialscope/internal/store"
	"socialscope/internal/vfs"
	"socialscope/internal/wal"
)

// WAL record kinds.
const (
	recBatch   byte = 1 // payload: a graph.AppendMutations-encoded batch
	recAnalyze byte = 2 // no payload: re-derive (deterministic) on replay
)

const (
	walSubdir  = "wal"
	ckptSubdir = "ckpt"
)

// DurableOptions tunes the durability subsystem. The zero value is
// ready to use.
type DurableOptions struct {
	// SegmentBytes rotates WAL segments past this size
	// (wal.DefaultSegmentBytes when 0).
	SegmentBytes int64
	// CheckpointEvery writes a checkpoint automatically after this many
	// Apply batches; 0 means checkpoints happen only on Checkpoint() and
	// Close().
	CheckpointEvery int
	// MaxChain bounds how many delta checkpoints stack on a full one
	// (store.DefaultMaxChain when 0).
	MaxChain int
	// FS overrides the filesystem — the fault-injection harness plugs in
	// here. Nil means the real one (vfs.OS).
	FS vfs.FS
}

// durable is the engine's durability state, guarded by Engine.mu.
type durable struct {
	fsys      vfs.FS
	log       *wal.Log
	ckpt      *store.Checkpointer
	every     int
	sinceCkpt int
}

// OpenDurable opens (or creates) a durable engine rooted at dir. On a
// fresh directory the engine starts from genesis (nil means an empty
// graph) and immediately checkpoints it, so the seed state — which
// predates the WAL — survives crashes too. On an existing directory
// genesis is ignored: the engine is rebuilt from the latest checkpoint
// plus a replay of the WAL tail, resuming at the exact version the last
// acknowledged write produced.
func OpenDurable(dir string, genesis *Graph, cfg Config, opts DurableOptions) (*Engine, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	cfg.fill()

	rec, err := store.LoadLatest(fsys, path.Join(dir, ckptSubdir))
	if err != nil {
		return nil, fmt.Errorf("socialscope: recovery: %w", err)
	}
	firstLSN := uint64(1)
	if rec != nil {
		firstLSN = rec.Meta.WalLSN + 1
	}
	log, err := wal.Open(fsys, path.Join(dir, walSubdir), wal.Options{
		SegmentBytes: opts.SegmentBytes,
		FirstLSN:     firstLSN,
	})
	if err != nil {
		return nil, fmt.Errorf("socialscope: recovery: %w", err)
	}

	e := &Engine{cfg: cfg}
	var st *engineState
	var startSeq uint64
	if rec == nil {
		g := genesis
		if g == nil {
			g = graph.New()
		}
		st = &engineState{base: g}
	} else {
		st = &engineState{
			base:     rec.Graph,
			analyzed: rec.Analyzed,
			version:  rec.Meta.Version,
		}
		startSeq = rec.Seq
	}
	st.disc = discovery.NewDiscoverer(st.current(), cfg.ItemType)
	e.state.Store(st)
	e.dur = &durable{
		fsys:  fsys,
		log:   log,
		ckpt:  store.NewCheckpointer(fsys, path.Join(dir, ckptSubdir), opts.MaxChain, startSeq),
		every: opts.CheckpointEvery,
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if rec == nil {
		// Make the genesis state durable before acknowledging the open.
		if err := e.checkpointLocked(); err != nil {
			_ = log.Close()
			return nil, fmt.Errorf("socialscope: genesis checkpoint: %w", err)
		}
	}
	err = log.Replay(firstLSN, func(lsn uint64, kind byte, payload []byte) error {
		switch kind {
		case recBatch:
			muts, derr := graph.DecodeMutations(payload)
			if derr != nil {
				return fmt.Errorf("record %d: %w", lsn, derr)
			}
			return e.applyLocked(muts, false)
		case recAnalyze:
			return e.analyzeLocked(false)
		default:
			return fmt.Errorf("record %d: unknown kind %d", lsn, kind)
		}
	})
	if err != nil {
		_ = log.Close()
		return nil, fmt.Errorf("socialscope: wal replay: %w", err)
	}
	return e, nil
}

// logRecord appends and fsyncs one WAL record; called with e.mu held,
// before the corresponding state is published. On error nothing was
// acknowledged: the caller must not publish, and the log heals its tail
// on the next append.
func (e *Engine) logRecord(kind byte, payload []byte) error {
	if e.dur == nil {
		return nil
	}
	if _, err := e.dur.log.AppendSync(kind, payload); err != nil {
		return fmt.Errorf("socialscope: wal append: %w", err)
	}
	return nil
}

// maybeCheckpointLocked counts an applied batch and, on a live (non-
// replay) engine with CheckpointEvery set, cuts a checkpoint when due.
// Checkpoint errors here are deliberately swallowed: the batch is
// already durable in the WAL, recovery replays it, and the next
// explicit Checkpoint or Close surfaces persistent trouble.
func (e *Engine) maybeCheckpointLocked(live bool) {
	if e.dur == nil {
		return
	}
	e.dur.sinceCkpt++
	if !live || e.dur.every <= 0 || e.dur.sinceCkpt < e.dur.every {
		return
	}
	_ = e.checkpointLocked()
}

// Checkpoint durably captures the engine's current state and prunes WAL
// segments the checkpoint made redundant. Only valid on engines opened
// with OpenDurable.
func (e *Engine) Checkpoint() error {
	if e.dur == nil {
		return fmt.Errorf("socialscope: Checkpoint on an engine without durability (use OpenDurable)")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.checkpointLocked()
}

func (e *Engine) checkpointLocked() error {
	st := e.state.Load()
	meta := store.Meta{Version: st.version, WalLSN: e.dur.log.NextLSN() - 1}
	if err := e.dur.ckpt.Save(st.base, st.analyzed, meta); err != nil {
		return err
	}
	e.dur.sinceCkpt = 0
	// Segments at or below the covered LSN are garbage now; a failure
	// here only delays reclamation.
	_ = e.dur.log.TruncateThrough(meta.WalLSN)
	return nil
}

// Close cuts a final checkpoint and closes the WAL. The engine keeps
// serving reads; subsequent writes fail. No-op on engines without
// durability.
func (e *Engine) Close() error {
	if e.dur == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ckErr := e.checkpointLocked()
	clErr := e.dur.log.Close()
	if ckErr != nil {
		return ckErr
	}
	return clErr
}
