package socialscope

// Durability: write-ahead logging and checkpointing for the engine.
//
// Every Apply batch is encoded and fsynced to the WAL *before* the new
// state is published; Analyze appends a marker record (the derivation
// is deterministic given the base graph and Config, so the record
// carries no payload). Checkpoints capture the base and analyzed graphs
// through structural-sharing deltas (internal/store) together with the
// engine version and the WAL position they cover; recovery loads the
// latest checkpoint chain and replays the WAL tail through the same
// Apply/Analyze code paths that produced it, so a recovered engine
// resumes at exactly the version and state the last acknowledged write
// left behind.
//
// Guarantee: when Apply (or Analyze) returns nil on a durable engine,
// the change survives a crash. The converse is one-directional — a
// batch whose Apply errored mid-sync may still be on disk and will
// replay after a crash, which is safe: it was validated before logging,
// and replay applies a consistent prefix of attempted writes.

import (
	"errors"
	"fmt"
	"path"

	"socialscope/internal/discovery"
	"socialscope/internal/graph"
	"socialscope/internal/store"
	"socialscope/internal/vfs"
	"socialscope/internal/wal"
)

// ErrFollower rejects writes on a follower engine: it replicates a
// leader's WAL and cannot originate changes until Promote.
var ErrFollower = errors.New("socialscope: follower engine is read-only (Promote to accept writes)")

// WAL record kinds.
const (
	recBatch   byte = 1 // payload: a graph.AppendMutations-encoded batch
	recAnalyze byte = 2 // no payload: re-derive (deterministic) on replay
)

const (
	walSubdir  = "wal"
	ckptSubdir = "ckpt"
)

// DurableOptions tunes the durability subsystem. The zero value is
// ready to use.
type DurableOptions struct {
	// SegmentBytes rotates WAL segments past this size
	// (wal.DefaultSegmentBytes when 0).
	SegmentBytes int64
	// CheckpointEvery writes a checkpoint automatically after this many
	// Apply batches; 0 means checkpoints happen only on Checkpoint() and
	// Close().
	CheckpointEvery int
	// MaxChain bounds how many delta checkpoints stack on a full one
	// (store.DefaultMaxChain when 0).
	MaxChain int
	// FS overrides the filesystem — the fault-injection harness plugs in
	// here. Nil means the real one (vfs.OS).
	FS vfs.FS
}

// durable is the engine's durability state, guarded by Engine.mu.
type durable struct {
	fsys      vfs.FS
	log       *wal.Log
	ckpt      *store.Checkpointer
	every     int
	sinceCkpt int
}

// OpenDurable opens (or creates) a durable engine rooted at dir. On a
// fresh directory the engine starts from genesis (nil means an empty
// graph) and immediately checkpoints it, so the seed state — which
// predates the WAL — survives crashes too. On an existing directory
// genesis is ignored: the engine is rebuilt from the latest checkpoint
// plus a replay of the WAL tail, resuming at the exact version the last
// acknowledged write produced.
func OpenDurable(dir string, genesis *Graph, cfg Config, opts DurableOptions) (*Engine, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	cfg.fill()

	rec, err := store.LoadLatest(fsys, path.Join(dir, ckptSubdir))
	if err != nil {
		return nil, fmt.Errorf("socialscope: recovery: %w", err)
	}
	firstLSN := uint64(1)
	if rec != nil {
		firstLSN = rec.Meta.WalLSN + 1
	}
	log, err := wal.Open(fsys, path.Join(dir, walSubdir), wal.Options{
		SegmentBytes: opts.SegmentBytes,
		FirstLSN:     firstLSN,
		Obs:          cfg.Obs,
	})
	if err != nil {
		return nil, fmt.Errorf("socialscope: recovery: %w", err)
	}

	e := &Engine{cfg: cfg, met: newEngineMetrics(cfg.Obs)}
	var st *engineState
	var startSeq uint64
	if rec == nil {
		g := genesis
		if g == nil {
			g = graph.New()
		}
		st = &engineState{base: g}
	} else {
		st = &engineState{
			base:     rec.Graph,
			analyzed: rec.Analyzed,
			version:  rec.Meta.Version,
		}
		startSeq = rec.Seq
	}
	st.disc = discovery.NewDiscoverer(st.current(), cfg.ItemType)
	e.publish(st)
	e.dur = &durable{
		fsys:  fsys,
		log:   log,
		ckpt:  store.NewCheckpointer(fsys, path.Join(dir, ckptSubdir), opts.MaxChain, startSeq).Instrument(cfg.Obs),
		every: opts.CheckpointEvery,
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if rec == nil {
		// Make the genesis state durable before acknowledging the open.
		if err := e.checkpointLocked(); err != nil {
			_ = log.Close()
			return nil, fmt.Errorf("socialscope: genesis checkpoint: %w", err)
		}
	}
	if err := log.Replay(firstLSN, e.replayRecord); err != nil {
		_ = log.Close()
		return nil, fmt.Errorf("socialscope: wal replay: %w", err)
	}
	// Replayed records count toward CheckpointEvery but never cut a
	// checkpoint mid-replay; settle the accumulated debt here so it does
	// not fire inside the first live write's critical section — and so
	// the WAL tail shrinks even if no write ever arrives.
	if e.dur.every > 0 && e.dur.sinceCkpt >= e.dur.every {
		_ = e.checkpointLocked()
	}
	return e, nil
}

// replayRecord decodes and applies one WAL record through the same
// paths a live write takes, with live=false so nothing is re-logged.
// Called with e.mu held, by recovery replay and by follower tailing.
func (e *Engine) replayRecord(lsn uint64, kind byte, payload []byte) error {
	switch kind {
	case recBatch:
		muts, derr := graph.DecodeMutations(payload)
		if derr != nil {
			return fmt.Errorf("record %d: %w", lsn, derr)
		}
		return e.applyLocked(muts, false)
	case recAnalyze:
		return e.analyzeLocked(false)
	default:
		return fmt.Errorf("record %d: unknown kind %d", lsn, kind)
	}
}

// logRecord appends and fsyncs one WAL record; called with e.mu held,
// before the corresponding state is published. On error nothing was
// acknowledged: the caller must not publish, and the log heals its tail
// on the next append.
func (e *Engine) logRecord(kind byte, payload []byte) error {
	if e.dur == nil {
		return nil
	}
	if _, err := e.dur.log.AppendSync(kind, payload); err != nil {
		return fmt.Errorf("socialscope: wal append: %w", err)
	}
	return nil
}

// maybeCheckpointLocked counts an applied batch and, on a live (non-
// replay) engine with CheckpointEvery set, cuts a checkpoint when due.
// Checkpoint errors here are deliberately swallowed: the batch is
// already durable in the WAL, recovery replays it, and the next
// explicit Checkpoint or Close surfaces persistent trouble.
func (e *Engine) maybeCheckpointLocked(live bool) {
	if e.dur == nil {
		return
	}
	e.dur.sinceCkpt++
	if !live || e.dur.every <= 0 || e.dur.sinceCkpt < e.dur.every {
		return
	}
	_ = e.checkpointLocked()
}

// Checkpoint durably captures the engine's current state and prunes WAL
// segments the checkpoint made redundant. Only valid on engines opened
// with OpenDurable.
func (e *Engine) Checkpoint() error {
	if e.dur == nil {
		return fmt.Errorf("socialscope: Checkpoint on an engine without durability (use OpenDurable)")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.checkpointLocked()
}

func (e *Engine) checkpointLocked() error {
	st := e.state.Load()
	meta := store.Meta{Version: st.version, WalLSN: e.dur.log.NextLSN() - 1}
	if err := e.dur.ckpt.Save(st.base, st.analyzed, meta); err != nil {
		return err
	}
	e.dur.sinceCkpt = 0
	// Segments at or below the covered LSN are garbage now; a failure
	// here only delays reclamation.
	_ = e.dur.log.TruncateThrough(meta.WalLSN)
	return nil
}

// Close cuts a final checkpoint and closes the WAL. The engine keeps
// serving reads; subsequent writes fail. No-op on engines without
// durability and on followers (a follower owns nothing on disk).
func (e *Engine) Close() error {
	if e.dur == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ckErr := e.checkpointLocked()
	clErr := e.dur.log.Close()
	if ckErr != nil {
		return ckErr
	}
	return clErr
}

// follower is the replication state of an engine opened with
// OpenFollower, guarded by Engine.mu. It owns no WAL handle and no
// checkpointer — only read paths over the leader's durable tree.
type follower struct {
	fsys  vfs.FS
	dir   string
	opts  DurableOptions
	watch *store.Watcher
	tail  *wal.Tailer
	// Latest manifest observed (or folded): its WAL watermark doubles as
	// the external confirmation for tail records, its seq seeds the
	// checkpointer on promotion, and its LSN sets the checkpoint debt.
	manSeq  uint64
	manLSN  uint64
	confirm uint64
}

// OpenFollower opens a read-only engine over a leader's durable tree:
// it folds the latest checkpoint chain, then replays new WAL records as
// the leader fsyncs them — each CatchUp publishing fresh state through
// the same RCU pointer queries read. Writes are rejected with
// ErrFollower until Promote. The leader process keeps exclusive
// ownership of the tree; the follower only ever reads it, so any number
// of followers can share one tree (a network filesystem, a replicated
// blob store) without coordination.
//
// The directory must already hold a checkpoint — start the leader
// first. genesis is deliberately absent from the signature: a follower
// has no authority to seed state.
func OpenFollower(dir string, cfg Config, opts DurableOptions) (*Engine, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	cfg.fill()
	rec, err := store.LoadLatest(fsys, path.Join(dir, ckptSubdir))
	if err != nil {
		return nil, fmt.Errorf("socialscope: follower: %w", err)
	}
	if rec == nil {
		return nil, fmt.Errorf("socialscope: follower: no checkpoint in %s — start the leader first", dir)
	}
	e := &Engine{cfg: cfg, met: newEngineMetrics(cfg.Obs)}
	st := &engineState{
		base:     rec.Graph,
		analyzed: rec.Analyzed,
		version:  rec.Meta.Version,
	}
	st.disc = discovery.NewDiscoverer(st.current(), cfg.ItemType)
	e.publish(st)
	e.fol = &follower{
		fsys:    fsys,
		dir:     dir,
		opts:    opts,
		watch:   store.NewWatcher(fsys, path.Join(dir, ckptSubdir), rec.Seq),
		tail:    wal.NewTailer(fsys, path.Join(dir, walSubdir), rec.Meta.WalLSN+1),
		manSeq:  rec.Seq,
		manLSN:  rec.Meta.WalLSN,
		confirm: rec.Meta.WalLSN,
	}
	e.isFol.Store(true)

	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.catchUpLocked(0, false); err != nil {
		return nil, fmt.Errorf("socialscope: follower: initial catch-up: %w", err)
	}
	return e, nil
}

// ReplicationLag reports how many confirmed WAL records a follower has
// yet to apply — the staleness a routing tier weighs when picking the
// most-caught-up replica to promote. ok is false on non-followers. Zero
// lag means the follower has applied everything the leader has
// confirmed; the unconfirmed tail record (bounded staleness) is not
// counted because the follower is forbidden to apply it.
func (e *Engine) ReplicationLag() (lag uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f := e.fol
	if f == nil {
		return 0, false
	}
	applied := f.tail.NextLSN() - 1
	if f.confirm > applied {
		return f.confirm - applied, true
	}
	return 0, true
}

// CatchUp polls the leader's manifest and WAL once, folding newly
// confirmed records into the follower's state (at most max records when
// max > 0) and re-basing onto a newer checkpoint chain if the tail
// position was checkpointed away. It returns the number of records
// applied. Zero with a nil error means the follower is caught up — the
// leader's last record stays invisible until a later write or
// checkpoint confirms it (bounded staleness; never bytes the leader may
// retract). Call it on a timer; each applied record publishes a new
// queryable version.
func (e *Engine) CatchUp(max int) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.catchUpLocked(max, false)
}

// catchUpLocked is CatchUp's body; callers hold e.mu. drain selects
// crash-recovery semantics — deliver every decodable record including a
// complete-but-unacknowledged tail — and is only valid when the leader
// is known dead (Promote).
func (e *Engine) catchUpLocked(max int, drain bool) (int, error) {
	f := e.fol
	if f == nil {
		return 0, fmt.Errorf("socialscope: CatchUp on a non-follower engine")
	}
	// Keep the replication-lag gauge current on every poll, whatever
	// path returns (the tail and confirmation point both may move).
	defer func() {
		if f := e.fol; f != nil {
			var lag uint64
			if applied := f.tail.NextLSN() - 1; f.confirm > applied {
				lag = f.confirm - applied
			}
			e.met.lag.SetUint(lag)
		}
	}()
	if man, changed, err := f.watch.Poll(); err != nil {
		return 0, fmt.Errorf("socialscope: follower: manifest watch: %w", err)
	} else if changed {
		f.manSeq, f.manLSN, f.confirm = man.Seq, man.WalLSN, man.WalLSN
	}
	total := 0
	for {
		budget := 0
		if max > 0 {
			if budget = max - total; budget <= 0 {
				return total, nil
			}
		}
		confirm := f.confirm
		if drain {
			confirm = wal.DrainConfirm
		}
		n, err := f.tail.Poll(confirm, budget, e.replayRecord)
		total += n
		if err == nil {
			return total, nil
		}
		if errors.Is(err, wal.ErrGone) {
			// The leader checkpointed past our tail position: fold the new
			// chain instead of replaying records that no longer exist.
			if err := e.rebaseLocked(); err != nil {
				return total, err
			}
			continue
		}
		return total, fmt.Errorf("socialscope: follower: %w", err)
	}
}

// rebaseLocked reloads the latest checkpoint chain and re-points the
// tailer past it. Versions may skip forward — every version ever
// published was still once a leader version — but never backward.
func (e *Engine) rebaseLocked() error {
	f := e.fol
	rec, err := store.LoadLatest(f.fsys, path.Join(f.dir, ckptSubdir))
	if err != nil {
		return fmt.Errorf("socialscope: follower re-base: %w", err)
	}
	if rec == nil {
		return fmt.Errorf("socialscope: follower re-base: checkpoint chain vanished")
	}
	if cur := e.state.Load(); rec.Meta.Version < cur.version {
		return fmt.Errorf("socialscope: follower re-base: checkpoint at version %d behind follower at %d",
			rec.Meta.Version, cur.version)
	}
	st := &engineState{
		base:     rec.Graph,
		analyzed: rec.Analyzed,
		version:  rec.Meta.Version,
	}
	st.disc = discovery.NewDiscoverer(st.current(), e.cfg.ItemType)
	e.publish(st)
	f.watch = store.NewWatcher(f.fsys, path.Join(f.dir, ckptSubdir), rec.Seq)
	f.tail = wal.NewTailer(f.fsys, path.Join(f.dir, walSubdir), rec.Meta.WalLSN+1)
	f.manSeq, f.manLSN, f.confirm = rec.Seq, rec.Meta.WalLSN, rec.Meta.WalLSN
	return nil
}

// Promote upgrades a follower into a writable leader after the previous
// leader has died. It drains the WAL with crash-recovery semantics —
// including a complete-but-unacknowledged tail record, exactly what the
// dead leader's own recovery would have replayed — then takes over the
// log at the recovered LSN and the checkpoint chain at its sequence.
// The caller must ensure the old leader is actually gone: two writers
// on one WAL directory corrupt it. Promote cross-checks that the log
// resumes at the LSN the drain reached and refuses otherwise.
func (e *Engine) Promote() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	f := e.fol
	if f == nil {
		return fmt.Errorf("socialscope: Promote on a non-follower engine")
	}
	if _, err := e.catchUpLocked(0, true); err != nil {
		return fmt.Errorf("socialscope: promote: drain: %w", err)
	}
	next := f.tail.NextLSN()
	log, err := wal.Open(f.fsys, path.Join(f.dir, walSubdir), wal.Options{
		SegmentBytes: f.opts.SegmentBytes,
		FirstLSN:     next,
		Obs:          e.cfg.Obs,
	})
	if err != nil {
		return fmt.Errorf("socialscope: promote: %w", err)
	}
	if got := log.NextLSN(); got != next {
		_ = log.Close()
		return fmt.Errorf("socialscope: promote: log resumes at LSN %d but the drained tail ends at %d — "+
			"is the old leader still writing?", got, next)
	}
	e.dur = &durable{
		fsys:  f.fsys,
		log:   log,
		ckpt:  store.NewCheckpointer(f.fsys, path.Join(f.dir, ckptSubdir), f.opts.MaxChain, f.manSeq).Instrument(e.cfg.Obs),
		every: f.opts.CheckpointEvery,
		// Records replayed since the last checkpoint are inherited debt,
		// same as leader recovery.
		sinceCkpt: int(next - 1 - f.manLSN),
	}
	e.fol = nil
	e.isFol.Store(false)
	e.met.lag.Set(0) // a leader has no replication lag
	if e.dur.every > 0 && e.dur.sinceCkpt >= e.dur.every {
		_ = e.checkpointLocked()
	}
	return nil
}
