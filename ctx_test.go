package socialscope_test

import (
	"context"
	"errors"
	"testing"

	"socialscope"
	"socialscope/internal/discovery"
	"socialscope/internal/graph"
	"socialscope/internal/workload"
)

// TestFacadeContextVariants verifies the context-aware facade entry
// points: an expired context aborts the evaluation with its error, a
// live one answers identically to the plain variants, and the plain
// signatures remain thin wrappers.
func TestFacadeContextVariants(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 50, Destinations: 20, Seed: 4, VisitsPerUser: 6, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{
		ItemType: "destination", TopK: socialscope.TopKTA,
	})
	if err != nil {
		t.Fatal(err)
	}
	user := corpus.Users[0]

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SearchCtx(cancelled, user, "museum"); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchCtx under cancelled context: %v, want context.Canceled", err)
	}
	if _, err := eng.RecommendCtx(cancelled, user, discovery.CFStepwise); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecommendCtx under cancelled context: %v, want context.Canceled", err)
	}

	plain, err := eng.Search(user, "museum hotel")
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := eng.SearchCtx(context.Background(), user, "museum hotel")
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Results()) != len(ctxed.Results()) {
		t.Fatalf("plain and ctx variants disagree: %d vs %d results",
			len(plain.Results()), len(ctxed.Results()))
	}
	for i, r := range plain.Results() {
		if ctxed.Results()[i].Item != r.Item || ctxed.Results()[i].Score != r.Score {
			t.Fatalf("result %d differs between plain and ctx variants", i)
		}
	}
	if ctxed.Stats == nil {
		t.Fatal("index-backed response carries no per-evaluation stats")
	}
	if ls, ok := eng.LastSearchStats(); !ok || ls.SnapshotVersion != ctxed.Stats.SnapshotVersion {
		t.Fatalf("LastSearchStats (%+v, %v) disagrees with response stats %+v", ls, ok, ctxed.Stats)
	}
}

// TestApplyRejectsIntraBatchDuplicateAdds pins the duplicate-id guard:
// two additions of the same fresh id in one batch — the shape two
// concurrent writers produce when their requests are coalesced after
// both allocated from one max-id snapshot — must be rejected loudly
// (graph replay would silently consolidate the second while the index
// delta counted both), while add-after-remove of the same id stays
// legal.
func TestApplyRejectsIntraBatchDuplicateAdds(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 30, Destinations: 12, Seed: 6, VisitsPerUser: 5, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	id := corpus.Graph.MaxLinkID() + 1
	mk := func(tag string) *graph.Link {
		l := graph.NewLink(id, corpus.Users[0], corpus.Destinations[0], graph.TypeAct, graph.SubtypeTag)
		l.Attrs.Add("tags", tag)
		return l
	}
	v0 := eng.Version()
	err = eng.Apply([]socialscope.Mutation{
		{Kind: graph.MutAddLink, Link: mk("hotel")},
		{Kind: graph.MutAddLink, Link: mk("beach")},
	})
	if err == nil {
		t.Fatal("duplicate intra-batch add-link accepted")
	}
	if eng.Version() != v0 {
		t.Fatal("rejected batch bumped the version")
	}

	// Same node id: also rejected.
	nid := corpus.Graph.MaxNodeID() + 1
	err = eng.Apply([]socialscope.Mutation{
		{Kind: graph.MutAddNode, Node: graph.NewNode(nid, graph.TypeUser)},
		{Kind: graph.MutAddNode, Node: graph.NewNode(nid, graph.TypeUser)},
	})
	if err == nil {
		t.Fatal("duplicate intra-batch add-node accepted")
	}

	// Remove-then-re-add of a resident id remains a legal sequence.
	var resident *graph.Link
	for _, l := range corpus.Graph.Out(corpus.Users[0]) {
		if l.HasType(graph.TypeAct) {
			resident = l.Clone()
			break
		}
	}
	if resident == nil {
		t.Fatal("user 0 has no activity to remove")
	}
	if err := eng.Apply([]socialscope.Mutation{
		{Kind: graph.MutRemoveLink, Link: resident},
		{Kind: graph.MutAddLink, Link: resident.Clone()},
	}); err != nil {
		t.Fatalf("remove-then-re-add rejected: %v", err)
	}
}

// TestCacheScope pins the serving cache's sharing granularity: peruser
// clustering yields a bare per-cluster scope (clusters are users),
// anything else is refined by the user, and TopK-off engines scope by
// user alone.
func TestCacheScope(t *testing.T) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 30, Destinations: 12, Seed: 4, VisitsPerUser: 5, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	u1, u2 := corpus.Users[0], corpus.Users[1]

	perUser, err := socialscope.New(corpus.Graph, socialscope.Config{
		ItemType: "destination", TopK: socialscope.TopKTA, ClusterStrategy: "peruser",
	})
	if err != nil {
		t.Fatal(err)
	}
	if s1, s2 := perUser.CacheScope(u1), perUser.CacheScope(u2); s1 == s2 {
		t.Fatalf("peruser scopes collide: %q vs %q", s1, s2)
	}
	if _, ok := perUser.ClusterOf(u1); !ok {
		t.Fatal("ClusterOf found no cluster under an indexed engine")
	}

	network, err := socialscope.New(corpus.Graph, socialscope.Config{
		ItemType: "destination", TopK: socialscope.TopKTA,
		ClusterStrategy: "network", ClusterTheta: 0.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Even when two users share a cluster, their scopes must differ:
	// responses are user-specific within a cluster.
	if s1, s2 := network.CacheScope(u1), network.CacheScope(u2); s1 == s2 {
		t.Fatalf("network-clustered scopes collide for distinct users: %q", s1)
	}

	off, err := socialscope.New(corpus.Graph, socialscope.Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := off.ClusterOf(u1); ok {
		t.Fatal("ClusterOf reported a cluster with TopK off")
	}
	if s1, s2 := off.CacheScope(u1), off.CacheScope(u2); s1 == s2 {
		t.Fatalf("TopK-off scopes collide: %q", s1)
	}
}
