// Socialbasis reproduces Example 2: Selma, a musician with two babies,
// plans a family trip to Barcelona. Her musician friends have no relevant
// activity, so the system must analyze her connections, reject them as a
// basis, and fall back to users with similar family trips — topic experts.
package main

import (
	"fmt"
	"log"

	"socialscope"
	"socialscope/internal/discovery"
)

func main() {
	b := socialscope.NewBuilder()
	selma := b.Node([]string{socialscope.TypeUser}, "name", "Selma", "interests", "music")
	// Musician friends: active only on music venues.
	var musicians []socialscope.NodeID
	for i := 0; i < 3; i++ {
		musicians = append(musicians,
			b.Node([]string{socialscope.TypeUser}, "name", fmt.Sprintf("musician-%d", i)))
	}
	// Family travelers: no connection to Selma, but rich family-trip
	// history in Barcelona.
	var families []socialscope.NodeID
	for i := 0; i < 2; i++ {
		families = append(families,
			b.Node([]string{socialscope.TypeUser}, "name", fmt.Sprintf("family-%d", i)))
	}
	club := b.Node([]string{socialscope.TypeItem, "destination"},
		"name", "Jazz Club", "city", "barcelona", "keywords", "music jazz nightlife")
	parc := b.Node([]string{socialscope.TypeItem, "destination"},
		"name", "Parc de la Ciutadella", "city", "barcelona",
		"keywords", "family park babies barcelona", "rating", "0.9")
	aquarium := b.Node([]string{socialscope.TypeItem, "destination"},
		"name", "Aquarium", "city", "barcelona",
		"keywords", "family babies barcelona indoor", "rating", "0.8")

	for _, m := range musicians {
		b.Link(selma, m, []string{socialscope.TypeConnect, socialscope.SubtypeFriend})
		b.Link(m, club, []string{socialscope.TypeAct, socialscope.SubtypeVisit})
	}
	for _, f := range families {
		b.Link(f, parc, []string{socialscope.TypeAct, socialscope.SubtypeVisit})
		b.Link(f, aquarium, []string{socialscope.TypeAct, socialscope.SubtypeReview}, "rating", "0.9")
	}
	g := b.Graph()

	q, err := discovery.ParseQuery("barcelona family babies")
	if err != nil {
		log.Fatal(err)
	}
	basis := discovery.SelectSocialBasis(g, selma, q, 1)
	fmt.Printf("query: %s\n", q)
	fmt.Printf("selected social basis: %s\n", basis.Kind)
	for _, u := range basis.Users {
		fmt.Printf("  - %s\n", g.Node(u).Attrs.Get("name"))
	}

	eng, err := socialscope.New(g, socialscope.Config{ItemType: "destination", Topics: 2})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := eng.Search(selma, "barcelona family babies")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecommendations:")
	for _, r := range resp.Results() {
		fmt.Printf("  %-24s score=%.3f social=%.3f\n",
			g.Node(r.Item).Attrs.Get("name"), r.Score, r.Social)
	}
	fmt.Println("\nNote: the Jazz Club matches 'barcelona' but the family basis")
	fmt.Println("ranks the baby-friendly destinations first — the Example 2 outcome.")
}
