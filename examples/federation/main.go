// Federation demonstrates the Content Management layer (Section 6.1): the
// same user population operated under the three management models, the
// remote-call price each pays for graph analysis, and Open Cartel's
// activity-driven synchronization.
package main

import (
	"fmt"
	"log"

	"socialscope/internal/federation"
)

func main() {
	// Table 2, probed live.
	table, err := federation.CompareModels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.String())

	// A day in the life of an Open Cartel content site.
	social := federation.NewSocialSite("facebook")
	site := federation.NewOpenCartel(social)
	for i := 0; i < 10; i++ {
		if err := site.RegisterUser(federation.Profile{
			ID: fmt.Sprintf("u:%d", i), Name: fmt.Sprintf("user %d", i),
		}); err != nil {
			log.Fatal(err)
		}
	}
	site.AddItem("dest:denver", []string{"denver", "attractions"})
	// Connections made on the content site propagate back.
	if err := site.Connect("u:0", "u:1"); err != nil {
		log.Fatal(err)
	}
	if err := site.Connect("u:0", "u:2"); err != nil {
		log.Fatal(err)
	}
	// Activities stay local.
	if err := site.RecordActivity(federation.Activity{
		User: "u:1", Item: "dest:denver", Kind: "visit",
	}); err != nil {
		log.Fatal(err)
	}
	if err := site.Sync(nil); err != nil {
		log.Fatal(err)
	}
	g, err := site.LocalGraph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open-cartel local graph after sync: %s (remote calls so far: %d)\n",
		g, site.RemoteCalls().Calls)

	// Activity-driven sync vs uniform sync.
	am := federation.NewActivityManager()
	mutate := func(round int) map[string]int {
		// u:0 is hyperactive; everyone else is quiet.
		if err := social.UpdateProfile("u:0", []string{fmt.Sprintf("round-%d", round)}); err != nil {
			panic(err)
		}
		return map[string]int{"u:0": 10}
	}
	out, err := federation.SimulateSync(social, site, federation.ActivityDrivenPolicy{
		Manager: am, MediumCount: 5, HighCount: 20, MediumPeriod: 2, LowPeriod: 5,
	}, am, 10, mutate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("activity-driven sync: %d calls over %d rounds, stale-rate %.3f\n",
		out.Calls, out.Rounds, out.StaleRate())
}
