// Quickstart: build a tiny social content site by hand, run the full
// SocialScope pipeline (analyze → discover → present → explain) through
// the public facade, and print the organized results.
package main

import (
	"fmt"
	"log"

	"socialscope"
)

func main() {
	// Content management: assemble the social content graph.
	b := socialscope.NewBuilder()
	john := b.Node([]string{socialscope.TypeUser}, "name", "John", "interests", "baseball")
	ann := b.Node([]string{socialscope.TypeUser}, "name", "Ann")
	bob := b.Node([]string{socialscope.TypeUser}, "name", "Bob")

	coors := b.Node([]string{socialscope.TypeItem, "destination"},
		"name", "Coors Field", "city", "denver",
		"keywords", "baseball stadium denver attractions", "rating", "0.9")
	museum := b.Node([]string{socialscope.TypeItem, "destination"},
		"name", "B's Ballpark Museum", "city", "denver",
		"keywords", "baseball museum denver attractions", "rating", "0.6")
	zoo := b.Node([]string{socialscope.TypeItem, "destination"},
		"name", "Denver Zoo", "city", "denver",
		"keywords", "zoo family denver attractions", "rating", "0.8")
	parc := b.Node([]string{socialscope.TypeItem, "destination"},
		"name", "Parc de la Ciutadella", "city", "barcelona",
		"keywords", "family park babies barcelona", "rating", "0.7")

	b.Link(john, ann, []string{socialscope.TypeConnect, socialscope.SubtypeFriend})
	b.Link(john, bob, []string{socialscope.TypeConnect, socialscope.SubtypeFriend})
	b.Link(ann, coors, []string{socialscope.TypeAct, socialscope.SubtypeVisit})
	b.Link(ann, museum, []string{socialscope.TypeAct, socialscope.SubtypeVisit})
	b.Link(bob, coors, []string{socialscope.TypeAct, socialscope.SubtypeVisit})
	b.Link(bob, zoo, []string{socialscope.TypeAct, socialscope.SubtypeVisit})
	b.Link(ann, parc, []string{socialscope.TypeAct, socialscope.SubtypeVisit})
	g := b.Graph()

	// Wire the engine and run the off-line Content Analyzer.
	eng, err := socialscope.New(g, socialscope.Config{ItemType: "destination", Topics: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Analyze(); err != nil {
		log.Fatal(err)
	}

	// Information discovery + presentation: John's Example 1 query.
	resp, err := eng.Search(john, "denver attractions")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query: \"denver attractions\" for John")
	fmt.Printf("basis: %s %v\n\n", resp.MSG.Basis.Kind, resp.MSG.Basis.Users)
	for _, r := range resp.Results() {
		n := eng.Graph().Node(r.Item)
		fmt.Printf("%-24s score=%.3f (semantic %.3f, social %.3f) endorsed by %d friend(s)\n",
			n.Attrs.Get("name"), r.Score, r.Semantic, r.Social, len(r.Endorsers))
	}
	fmt.Printf("\ngrouped by %s:\n", resp.Presentation.Chosen.Criterion)
	for _, grp := range resp.Presentation.Chosen.Groups {
		fmt.Printf("  [%s] %d item(s), quality %.3f\n", grp.Label, grp.Size(), grp.Quality)
	}
	if len(resp.Results()) > 0 {
		top := resp.Results()[0].Item
		fmt.Printf("\nwhy the top result: %s\n", resp.Explanations[top].Summary)
	}
}
