// Exploration reproduces Example 3: Alexia's broad "american history"
// query returns places across the country and across endorser
// communities. Instead of a flat list, the presentation layer groups the
// results — structurally by city, socially by who endorses them — and
// explains each group, with zoom-in on demand.
package main

import (
	"fmt"
	"log"

	"socialscope"
	"socialscope/internal/graph"
	"socialscope/internal/presentation"
)

func main() {
	b := socialscope.NewBuilder()
	alexia := b.Node([]string{socialscope.TypeUser}, "name", "Alexia")
	var classmates, soccer []socialscope.NodeID
	for i := 0; i < 3; i++ {
		classmates = append(classmates, b.Node([]string{socialscope.TypeUser},
			"name", fmt.Sprintf("classmate-%d", i)))
		soccer = append(soccer, b.Node([]string{socialscope.TypeUser},
			"name", fmt.Sprintf("soccer-%d", i)))
	}
	jane := b.Node([]string{socialscope.TypeUser}, "name", "Jane")

	type site struct {
		name, city string
	}
	sites := []site{
		{"Freedom Trail", "boston"},
		{"Old North Church", "boston"},
		{"Independence Hall", "philadelphia"},
		{"Liberty Bell", "philadelphia"},
		{"Alamo", "san antonio"},
		{"Gettysburg", "gettysburg"},
	}
	var items []socialscope.NodeID
	for _, s := range sites {
		items = append(items, b.Node([]string{socialscope.TypeItem, "destination"},
			"name", s.name, "city", s.city, "keywords", "american history historic"))
	}
	for _, c := range classmates {
		b.Link(alexia, c, []string{socialscope.TypeConnect, "classmate"})
		b.Link(c, items[0], []string{socialscope.TypeAct, socialscope.SubtypeVisit})
		b.Link(c, items[1], []string{socialscope.TypeAct, socialscope.SubtypeVisit})
	}
	for _, s := range soccer {
		b.Link(alexia, s, []string{socialscope.TypeConnect, "teammate"})
		b.Link(s, items[2], []string{socialscope.TypeAct, socialscope.SubtypeVisit})
		b.Link(s, items[3], []string{socialscope.TypeAct, socialscope.SubtypeVisit})
	}
	// Jane left comments on many result destinations (the related-user
	// exploration of Example 3).
	for _, it := range items[:4] {
		b.Link(jane, it, []string{socialscope.TypeAct, socialscope.SubtypeReview})
	}
	g := b.Graph()

	eng, err := socialscope.New(g, socialscope.Config{
		ItemType: "destination", Topics: 2, MaxGroups: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := eng.Search(alexia, "american history")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: \"american history\" — %d results\n\n", len(resp.Results()))

	fmt.Printf("chosen grouping: %s\n", resp.Presentation.Chosen.Criterion)
	for _, grp := range resp.Presentation.Chosen.Groups {
		fmt.Printf("  [%s] %d item(s)\n", grp.Label, grp.Size())
		for _, it := range grp.Items {
			fmt.Printf("      %s\n", g.Node(it).Attrs.Get("name"))
		}
	}
	fmt.Println("\nalternative groupings a UI could toggle to:")
	for _, alt := range resp.Presentation.Alternatives {
		fmt.Printf("  %s (%d groups)\n", alt.Criterion, len(alt.Groups))
	}

	// Social grouping with explanations: who endorses each group.
	items2 := make([]graph.NodeID, 0, len(resp.Results()))
	scores := map[graph.NodeID]float64{}
	for _, r := range resp.Results() {
		items2 = append(items2, r.Item)
		scores[r.Item] = r.Score
	}
	socialGroups, err := presentation.SocialGrouping(g, items2, scores, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsocial grouping (by endorser overlap) with group explanations:")
	for _, grp := range socialGroups.Groups {
		ex := presentation.ExplainGroup(g, alexia, grp, "cf")
		fmt.Printf("  [%s] %d item(s) — %s\n", grp.Label, grp.Size(), ex.Summary)
	}

	// Zoom-in (the hierarchical presentation of Section 7.1).
	if len(resp.Presentation.Chosen.Groups) > 0 {
		first := resp.Presentation.Chosen.Groups[0]
		sub, err := presentation.Zoom(g, first, scores, presentation.OrganizeConfig{}, "social")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nzoom into [%s]: %d subgroup(s)\n", first.Label, len(sub.Groups))
	}
}
