// Travel reproduces Example 1 at corpus scale: John, a baseball fan in
// Denver for a conference, searches "denver attractions" on a generated
// Y!Travel-style site; semantic relevance scopes the results and his
// friends' activities rank baseball venues first. It also runs Example 5's
// collaborative filtering for the same user in both evaluation variants.
package main

import (
	"fmt"
	"log"

	"socialscope"
	"socialscope/internal/discovery"
	"socialscope/internal/workload"
)

func main() {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 120, Destinations: 60, Seed: 2026, VisitsPerUser: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := socialscope.New(corpus.Graph, socialscope.Config{
		ItemType: "destination", Topics: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Analyze(); err != nil {
		log.Fatal(err)
	}
	john := corpus.Users[0]
	g := eng.Graph()
	fmt.Printf("site: %s\n", g)
	fmt.Printf("John is %s with %d friends\n\n",
		g.Node(john).Attrs.Get("name"), len(g.Neighbors(john)))

	resp, err := eng.Search(john, "denver attractions")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== search: \"denver attractions\" ===")
	for i, r := range resp.Results() {
		if i >= 5 {
			break
		}
		n := g.Node(r.Item)
		fmt.Printf("%d. %-20s city=%-12s score=%.3f endorsers=%d\n",
			i+1, n.Attrs.Get("name"), n.Attrs.Get("city"), r.Score, len(r.Endorsers))
	}

	fmt.Println("\n=== Example 5 collaborative filtering (both variants) ===")
	for _, variant := range []discovery.CFVariant{discovery.CFStepwise, discovery.CFPattern} {
		recs, err := discovery.CollaborativeFiltering(g, john, discovery.CFConfig{
			Variant: variant, SimThreshold: 0.2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s variant: %d recommendations", variant, len(recs))
		if len(recs) > 0 {
			fmt.Printf("; top: %s (score %.3f, via %d similar users)",
				g.Node(recs[0].Item).Attrs.Get("name"), recs[0].Score, len(recs[0].Basis))
		}
		fmt.Println()
	}
}
