// Tagging demonstrates the Section 6.2 storage study on a del.icio.us-style
// site: network-aware scoring, the per-user / clustered / global index
// spectrum, and the space-vs-rescoring trade-off, with answers verified
// against brute force.
package main

import (
	"fmt"
	"log"

	"socialscope/internal/cluster"
	"socialscope/internal/index"
	"socialscope/internal/scoring"
	"socialscope/internal/workload"
)

func main() {
	corpus, err := workload.Tagging(workload.TaggingConfig{
		Users: 100, Items: 200, Tags: 12, Seed: 7, TagsPerUser: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := index.Extract(corpus.Graph)
	user := data.Users[0]
	query := data.Tags[:2]
	fmt.Printf("site: %d users, %d items, %d tags; query %v for user %d\n\n",
		len(data.Users), len(data.Items), len(data.Tags), query, user)

	exact := data.ExactTopK(user, query, 5, scoring.CountF, scoring.SumG)
	fmt.Println("brute-force top-5 (score = Σ_k |network(u) ∩ taggers(i,k)|):")
	for _, r := range exact {
		fmt.Printf("  item %-6d score %.0f\n", r.Item, r.Score)
	}

	fmt.Printf("\n%-10s %-9s %-9s %-12s %-10s %-8s\n",
		"strategy", "clusters", "entries", "bytes(10B/e)", "rescores", "agrees")
	for _, s := range []cluster.Strategy{cluster.PerUser, cluster.NetworkBased,
		cluster.BehaviorBased, cluster.Global} {
		cl, err := cluster.Build(corpus.Graph, s, 0.3)
		if err != nil {
			log.Fatal(err)
		}
		ix, err := index.Build(data, cl, scoring.CountF)
		if err != nil {
			log.Fatal(err)
		}
		top, stats, err := ix.TopK(user, query, 5, scoring.SumG)
		if err != nil {
			log.Fatal(err)
		}
		agrees := len(top) == len(exact)
		for i := range top {
			if !agrees || top[i] != exact[i] {
				agrees = false
				break
			}
		}
		fmt.Printf("%-10s %-9d %-9d %-12d %-10d %-8v\n",
			s, cl.NumClusters(), ix.EntryCount(), ix.SizeBytes(), stats.ExactScores, agrees)
	}
	fmt.Println("\nEvery strategy returns the exact answer; they differ only in")
	fmt.Println("storage (entries) and query-time rescoring work — the §6.2 trade-off.")
}
