package socialscope

// Crash-recovery differential harness. A deterministic mutation stream
// (with an Analyze in the middle) drives two engines: a never-crashed
// oracle whose state digest is captured at every version, and a durable
// engine running over a fault-injection filesystem that is crashed at
// EVERY filesystem operation boundary, under both loss models (drop
// unsynced writes / keep torn tails). After each crash the engine is
// reopened from disk and its digest — canonical encodings of the base
// and analyzed graphs (contents, iteration order, id high-water marks),
// the state version, and index-backed top-k rankings for a user panel —
// must be byte-identical to the oracle's digest at the recovered
// version, which must be at or past the last acknowledged write.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"socialscope/internal/graph"
	"socialscope/internal/store"
	"socialscope/internal/vfs"
	"socialscope/internal/workload"
)

const durTestDir = "dur"

func durableTestConfig() Config {
	return Config{ItemType: "destination", Topics: 2, Seed: 11, TopK: TopKTA}
}

func durableTestOpts(fsys vfs.FS) DurableOptions {
	return DurableOptions{
		SegmentBytes:    512, // force several WAL rotations inside the stream
		CheckpointEvery: 4,
		MaxChain:        2, // force delta-chain resets inside the stream
		FS:              fsys,
	}
}

// engineDigest captures everything recovery must reproduce exactly. The
// graph encodings are the canonical checkpoint bytes — build-order
// independent, covering contents, hash-order iteration and the
// MaxNodeID/MaxLinkID high-water marks — and the rankings go through
// the engine's real query path (index build or incremental delta,
// whichever the engine's history dictates).
func engineDigest(t *testing.T, e *Engine, users []NodeID, query string) string {
	t.Helper()
	st := e.state.Load()
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], st.version)
	h.Write(buf[:])
	h.Write(graph.NewCkptWriter().AppendCheckpoint(nil, st.base))
	if st.analyzed != nil {
		h.Write([]byte{1})
		h.Write(graph.NewCkptWriter().AppendCheckpoint(nil, st.analyzed))
	}
	for _, u := range users {
		resp, err := e.Search(u, query)
		if err != nil {
			t.Fatalf("digest query for user %d: %v", u, err)
		}
		for _, r := range resp.Results() {
			binary.LittleEndian.PutUint64(buf[:], uint64(r.Item))
			h.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.Score))
			h.Write(buf[:])
		}
		h.Write([]byte{0xff})
	}
	return hex.EncodeToString(h.Sum(nil))
}

type durStep struct {
	muts    []graph.Mutation
	analyze bool
}

// buildDurabilityWorkload generates the deterministic stream and runs
// the oracle over it, returning the genesis graph, the steps, and the
// oracle digest at every version a recovered engine can land on.
func buildDurabilityWorkload(t *testing.T) (genesis *graph.Graph, steps []durStep, digests map[uint64]string, users []NodeID, query string) {
	t.Helper()
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 14, Destinations: 8, Seed: 23, VisitsPerUser: 4, TagFraction: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	genesis = corpus.Graph
	users = []NodeID{corpus.Users[0], corpus.Users[5]}

	// Sample the real tag vocabulary (LinkIDs is sorted → deterministic).
	var vocab []string
	seen := map[string]bool{}
	for _, id := range genesis.LinkIDs() {
		if tag := genesis.Link(id).Attrs.Get("tags"); tag != "" && !seen[tag] {
			seen[tag] = true
			vocab = append(vocab, tag)
		}
	}
	if len(vocab) < 2 {
		t.Fatal("corpus has too few tags")
	}
	query = vocab[0] + " " + vocab[1]

	oracle, err := New(genesis, durableTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	digests = map[uint64]string{0: engineDigest(t, oracle, users, query)}

	scratch := genesis.Clone()
	clog := graph.RecordInto(scratch)
	nextNode := scratch.MaxNodeID() + 1
	nextLink := scratch.MaxLinkID() + 1
	rng := rand.New(rand.NewSource(91))
	items := corpus.Destinations
	var added []NodeID // stream-added users, removal candidates

	addTagging := func(src NodeID) {
		l := graph.NewLink(nextLink, src, items[rng.Intn(len(items))],
			graph.TypeAct, graph.SubtypeTag)
		nextLink++
		l.Attrs.Add("tags", vocab[rng.Intn(len(vocab))])
		if err := scratch.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}

	for s := 0; s < 12; s++ {
		if s == 4 {
			steps = append(steps, durStep{analyze: true})
			if err := oracle.Analyze(); err != nil {
				t.Fatal(err)
			}
			// Analyzer-derived elements allocate ids past the base maxima;
			// later stream ids must clear them too (the engine rejects
			// collisions with the analyzed graph).
			if an := oracle.state.Load().analyzed; an != nil {
				if m := an.MaxNodeID(); m >= nextNode {
					nextNode = m + 1
				}
				if m := an.MaxLinkID(); m >= nextLink {
					nextLink = m + 1
				}
			}
			digests[oracle.Version()] = engineDigest(t, oracle, users, query)
			continue
		}
		for o, ops := 0, 1+rng.Intn(3); o < ops; o++ {
			switch k := rng.Intn(10); {
			case k < 5: // a new user tags an item
				u := graph.NewNode(nextNode, graph.TypeUser)
				nextNode++
				u.Attrs.Add("name", fmt.Sprintf("wal-user-%d", u.ID))
				if err := scratch.AddNode(u); err != nil {
					t.Fatal(err)
				}
				added = append(added, u.ID)
				addTagging(u.ID)
			case k < 7: // an earlier stream user tags again
				if len(added) == 0 {
					continue
				}
				addTagging(added[rng.Intn(len(added))])
			case k < 8: // consolidate an existing link (records Prev)
				lids := scratch.LinkIDs()
				l := scratch.Link(lids[rng.Intn(len(lids))]).Clone()
				l.Attrs.Add("tags", vocab[rng.Intn(len(vocab))])
				if err := scratch.PutLink(l); err != nil {
					t.Fatal(err)
				}
			case k < 9: // remove a stream-added user (cascade) — retracted
				// high-water ids must survive recovery
				if len(added) == 0 {
					continue
				}
				i := rng.Intn(len(added))
				scratch.RemoveNode(added[i])
				added = append(added[:i], added[i+1:]...)
			default: // remove a random link
				lids := scratch.LinkIDs()
				scratch.RemoveLink(lids[rng.Intn(len(lids))])
			}
		}
		muts := clog.Drain()
		if len(muts) == 0 {
			continue
		}
		steps = append(steps, durStep{muts: muts})
		if err := oracle.Apply(muts); err != nil {
			t.Fatal(err)
		}
		digests[oracle.Version()] = engineDigest(t, oracle, users, query)
	}
	if len(steps) < 8 {
		t.Fatalf("workload generated only %d steps", len(steps))
	}
	return genesis, steps, digests, users, query
}

// runDurableWorkload opens a durable engine over fsys and pushes the
// stream through it, returning the highest version whose write was
// acknowledged before the first error (fault runs stop at the injected
// crash).
func runDurableWorkload(fsys vfs.FS, genesis *graph.Graph, steps []durStep) (acked uint64, err error) {
	eng, err := OpenDurable(durTestDir, genesis, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		return 0, err
	}
	acked = eng.Version()
	for _, s := range steps {
		if s.analyze {
			err = eng.Analyze()
		} else {
			err = eng.Apply(s.muts)
		}
		if err != nil {
			return acked, err
		}
		acked = eng.Version()
	}
	return acked, eng.Close()
}

func TestCrashRecoveryDifferential(t *testing.T) {
	genesis, steps, digests, users, query := buildDurabilityWorkload(t)
	for _, tc := range []struct {
		name string
		mode vfs.LossMode
	}{
		{"drop-unsynced", vfs.DropUnsynced},
		{"keep-unsynced", vfs.KeepUnsynced},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Golden run without a crash: fixes the op budget and proves a
			// clean close/reopen resumes the exact version.
			golden := vfs.NewFaultFS(tc.mode)
			golden.SetWriteChunk(32)
			acked, err := runDurableWorkload(golden, genesis, steps)
			if err != nil {
				t.Fatal(err)
			}
			reopened, err := OpenDurable(durTestDir, nil, durableTestConfig(), durableTestOpts(golden))
			if err != nil {
				t.Fatal(err)
			}
			if v := reopened.Version(); v != acked {
				t.Fatalf("clean reopen at version %d, want %d", v, acked)
			}
			if d := engineDigest(t, reopened, users, query); d != digests[acked] {
				t.Fatal("clean reopen diverged from oracle")
			}
			totalOps := golden.Ops()

			stride := int64(1)
			if testing.Short() {
				stride = 7
			}
			points := 0
			for cp := int64(1); cp <= totalOps; cp += stride {
				points++
				fsys := vfs.NewFaultFS(tc.mode)
				fsys.SetWriteChunk(32)
				fsys.SetCrashAtOp(cp)
				ackedAt, _ := runDurableWorkload(fsys, genesis, steps)
				fsys.Recover()
				rec, err := OpenDurable(durTestDir, genesis, durableTestConfig(), durableTestOpts(fsys))
				if err != nil {
					t.Fatalf("crash point %d: recovery failed: %v", cp, err)
				}
				v := rec.Version()
				if v < ackedAt {
					t.Fatalf("crash point %d: durability violation: acked version %d, recovered %d",
						cp, ackedAt, v)
				}
				want, ok := digests[v]
				if !ok {
					t.Fatalf("crash point %d: recovered to unknown version %d", cp, v)
				}
				if got := engineDigest(t, rec, users, query); got != want {
					t.Fatalf("crash point %d: recovered state at version %d diverged from oracle", cp, v)
				}
			}
			t.Logf("verified %d crash points over %d fs ops (stride %d)", points, totalOps, stride)
		})
	}
}

// TestWALSyncFailureThenRetry covers the transient-fault path: a failed
// fsync must leave the engine on its prior state, a retry of the same
// batch must succeed without double-applying, and a crash right after
// the failed sync must recover to a state the oracle recognizes.
func TestWALSyncFailureThenRetry(t *testing.T) {
	genesis, steps, digests, users, query := buildDurabilityWorkload(t)
	failAt := 0 // index of the first non-analyze step past the genesis open
	opts := func(fsys vfs.FS) DurableOptions {
		return DurableOptions{FS: fsys} // no auto-checkpoints: ops stay predictable
	}

	t.Run("retry", func(t *testing.T) {
		fsys := vfs.NewFaultFS(vfs.KeepUnsynced)
		eng, err := OpenDurable(durTestDir, genesis, durableTestConfig(), opts(fsys))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Apply(steps[failAt].muts); err != nil {
			t.Fatal(err)
		}
		v := eng.Version()

		// The next append is one write (big chunk) at op Ops(), then one
		// sync at op Ops()+1: fail the sync.
		fsys.SetWriteChunk(1 << 20)
		fsys.FailSyncAtOp(fsys.Ops() + 1)
		if err := eng.Apply(steps[failAt+1].muts); err == nil {
			t.Fatal("Apply acknowledged a batch whose fsync failed")
		}
		if eng.Version() != v {
			t.Fatalf("failed Apply advanced the version to %d", eng.Version())
		}

		// Retry: the WAL heals its tail (truncating the unacked record)
		// and the same batch lands exactly once.
		if err := eng.Apply(steps[failAt+1].muts); err != nil {
			t.Fatalf("retry after transient sync failure: %v", err)
		}
		if eng.Version() != v+1 {
			t.Fatalf("retry landed at version %d, want %d", eng.Version(), v+1)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := OpenDurable(durTestDir, nil, durableTestConfig(), opts(fsys))
		if err != nil {
			t.Fatal(err)
		}
		if got := engineDigest(t, rec, users, query); got != digests[rec.Version()] {
			t.Fatal("state after failed-sync retry diverged from oracle")
		}
	})

	t.Run("crash-after-failed-sync", func(t *testing.T) {
		fsys := vfs.NewFaultFS(vfs.KeepUnsynced)
		eng, err := OpenDurable(durTestDir, genesis, durableTestConfig(), opts(fsys))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Apply(steps[failAt].muts); err != nil {
			t.Fatal(err)
		}
		acked := eng.Version()
		fsys.SetWriteChunk(1 << 20)
		fsys.FailSyncAtOp(fsys.Ops() + 1)
		if err := eng.Apply(steps[failAt+1].muts); err == nil {
			t.Fatal("Apply acknowledged a batch whose fsync failed")
		}
		fsys.SetCrashAtOp(fsys.Ops()) // crash before anything else happens
		fsys.Recover()
		rec, err := OpenDurable(durTestDir, nil, durableTestConfig(), opts(fsys))
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		// The unacked record was complete; KeepUnsynced may surface it, so
		// the recovered version is acked or acked+1 — and either way the
		// state must match the oracle at that version.
		v := rec.Version()
		if v < acked || v > acked+1 {
			t.Fatalf("recovered version %d outside [%d,%d]", v, acked, acked+1)
		}
		if got := engineDigest(t, rec, users, query); got != digests[v] {
			t.Fatalf("recovered state at version %d diverged from oracle", v)
		}
	})
}

// TestRecoveryCutsCheckpointDebtAtOpen: records replayed during
// recovery count toward CheckpointEvery, and the due checkpoint must be
// cut at the end of OpenDurable — not inside the first live write's
// critical section (the regression), and not never.
func TestRecoveryCutsCheckpointDebtAtOpen(t *testing.T) {
	genesis, steps, _, _, _ := buildDurabilityWorkload(t)
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)

	// First life: no auto-checkpoints, so four applied batches all sit in
	// the WAL past the genesis checkpoint.
	eng, err := OpenDurable(durTestDir, genesis, durableTestConfig(), DurableOptions{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	var rest []durStep
	applied := 0
	for i, s := range steps {
		if s.analyze {
			continue
		}
		if applied == 4 {
			rest = steps[i:]
			break
		}
		if err := eng.Apply(s.muts); err != nil {
			t.Fatal(err)
		}
		applied++
	}
	acked := eng.Version()
	fsys.SetCrashAtOp(fsys.Ops()) // crash without Close: debt stays in the WAL
	fsys.Recover()

	// Second life: CheckpointEvery=3 < 4 replayed records, so the debt is
	// due the moment recovery finishes.
	rec, err := OpenDurable(durTestDir, nil, durableTestConfig(),
		DurableOptions{CheckpointEvery: 3, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if v := rec.Version(); v != acked {
		t.Fatalf("recovered version %d, want %d", v, acked)
	}
	ck, err := store.LoadLatest(fsys, durTestDir+"/ckpt")
	if err != nil || ck == nil {
		t.Fatalf("no checkpoint after recovery: %v", err)
	}
	if ck.Meta.Version != acked {
		t.Fatalf("checkpoint at version %d after open, want the debt settled at %d",
			ck.Meta.Version, acked)
	}
	seqAfterOpen := ck.Seq

	// The first live write must NOT cut a checkpoint — the debt was
	// settled at open, so its counter starts at zero again.
	var next durStep
	for _, s := range rest {
		if !s.analyze {
			next = s
			break
		}
	}
	if next.muts == nil {
		t.Fatal("workload too short for a post-recovery step")
	}
	if err := rec.Apply(next.muts); err != nil {
		t.Fatal(err)
	}
	ck2, err := store.LoadLatest(fsys, durTestDir+"/ckpt")
	if err != nil || ck2 == nil {
		t.Fatal(err)
	}
	if ck2.Seq != seqAfterOpen {
		t.Fatalf("first post-recovery Apply cut a checkpoint (seq %d -> %d)",
			seqAfterOpen, ck2.Seq)
	}
	if v := rec.Version(); v != acked+1 {
		t.Fatalf("post-recovery Apply at version %d, want %d", v, acked+1)
	}
}

// TestDurableReopenResumesExactVersion runs the durability subsystem on
// the real filesystem (in a temp dir): close/reopen resumes the exact
// version and digest, and the recovered engine accepts new writes.
func TestDurableReopenResumesExactVersion(t *testing.T) {
	genesis, steps, digests, users, query := buildDurabilityWorkload(t)
	dir := t.TempDir() + "/state"

	eng, err := OpenDurable(dir, genesis, durableTestConfig(), DurableOptions{CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		if s.analyze {
			err = eng.Analyze()
		} else {
			err = eng.Apply(s.muts)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	v := eng.Version()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(dir, nil, durableTestConfig(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Version() != v {
		t.Fatalf("reopened at version %d, want %d", re.Version(), v)
	}
	if got := engineDigest(t, re, users, query); got != digests[v] {
		t.Fatal("reopened state diverged from oracle")
	}

	// The recovered engine is live: new writes append beyond the replayed
	// WAL and survive another reopen.
	ids := graph.IDSourceFor(re.Graph())
	n := graph.NewNode(ids.NextNode(), graph.TypeUser)
	if err := re.Apply([]graph.Mutation{{Kind: graph.MutAddNode, Node: n}}); err != nil {
		t.Fatal(err)
	}
	if re.Version() != v+1 {
		t.Fatalf("post-recovery Apply at version %d, want %d", re.Version(), v+1)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := OpenDurable(dir, nil, durableTestConfig(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if third.Version() != v+1 || third.Graph().Node(n.ID) == nil {
		t.Fatalf("second reopen lost the post-recovery write (version %d)", third.Version())
	}
	if err := third.Close(); err != nil {
		t.Fatal(err)
	}
}
