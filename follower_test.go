package socialscope

// Replication tests: follower engines tailing a leader's WAL, and the
// leader-crash → follower-promote differential harness. The follower's
// reads consume no FaultFS operations, so the crash-point space of the
// replicated pair is identical to the single-engine harness — and a
// twin filesystem driven through the same workload without a follower
// reaches the same post-crash disk, which makes promotion exactly
// comparable to leader crash recovery.

import (
	"errors"
	"sync"
	"testing"

	"socialscope/internal/vfs"
)

// followerPump drains everything currently confirmed into the follower
// one record at a time, verifying the staleness contract on each newly
// published version: versions advance strictly monotonically, every one
// of them is a version the oracle (leader) once published, and the
// state digest at it is byte-identical to the oracle's. Pump errors are
// returned (a crashed filesystem mid-run), verification failures are
// fatal.
func followerPump(t *testing.T, fol *Engine, lastPub *uint64, digests map[uint64]string, users []NodeID, query string) error {
	t.Helper()
	for {
		n, err := fol.CatchUp(1)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		v := fol.Version()
		if v <= *lastPub {
			t.Fatalf("follower version not monotone: published %d after %d", v, *lastPub)
		}
		want, ok := digests[v]
		if !ok {
			t.Fatalf("follower published version %d the leader never acknowledged", v)
		}
		if got := engineDigest(t, fol, users, query); got != want {
			t.Fatalf("follower state at version %d diverged from oracle", v)
		}
		*lastPub = v
	}
}

func TestFollowerTailsLeaderLive(t *testing.T) {
	genesis, steps, digests, users, query := buildDurabilityWorkload(t)
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	fsys.SetWriteChunk(32)
	leader, err := OpenDurable(durTestDir, genesis, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	fol, err := OpenFollower(durTestDir, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	if !fol.IsFollower() {
		t.Fatal("IsFollower() false on a follower")
	}
	if err := fol.Apply(steps[0].muts); !errors.Is(err, ErrFollower) {
		t.Fatalf("follower Apply: want ErrFollower, got %v", err)
	}
	if err := fol.Analyze(); !errors.Is(err, ErrFollower) {
		t.Fatalf("follower Analyze: want ErrFollower, got %v", err)
	}

	lastPub := fol.Version()
	for _, s := range steps {
		if s.analyze {
			err = leader.Analyze()
		} else {
			err = leader.Apply(s.muts)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := followerPump(t, fol, &lastPub, digests, users, query); err != nil {
			t.Fatal(err)
		}
		// Bounded staleness: the follower is at most one acknowledged
		// record behind the leader (the unconfirmed tail record).
		if v := fol.Version(); v+1 < leader.Version() {
			t.Fatalf("follower at version %d, leader at %d — staleness unbounded", v, leader.Version())
		}
	}
	// The leader's final checkpoint (Close) confirms the tail: the
	// follower converges on the exact last acknowledged version.
	acked := leader.Version()
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	if err := followerPump(t, fol, &lastPub, digests, users, query); err != nil {
		t.Fatal(err)
	}
	if v := fol.Version(); v != acked {
		t.Fatalf("follower converged at version %d, leader acknowledged %d", v, acked)
	}
}

func TestFollowerRebasesOntoNewCheckpointChain(t *testing.T) {
	genesis, steps, digests, users, query := buildDurabilityWorkload(t)
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	leader, err := OpenDurable(durTestDir, genesis, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	// The follower attaches at genesis — and then never polls while the
	// leader runs the whole stream. CheckpointEvery=4 truncates the WAL
	// repeatedly, so the follower's tail position is long gone.
	fol, err := OpenFollower(durTestDir, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	genesisV := fol.Version()
	for _, s := range steps {
		if s.analyze {
			err = leader.Analyze()
		} else {
			err = leader.Apply(s.muts)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	acked := leader.Version()
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}

	// One catch-up: the tailer reports its records truncated away, the
	// follower re-bases onto the latest chain and replays only the tail.
	if _, err := fol.CatchUp(0); err != nil {
		t.Fatalf("catch-up across truncation: %v", err)
	}
	v := fol.Version()
	if v != acked {
		t.Fatalf("re-based follower at version %d, want %d", v, acked)
	}
	if v <= genesisV {
		t.Fatalf("follower never advanced past genesis version %d", genesisV)
	}
	if got := engineDigest(t, fol, users, query); got != digests[v] {
		t.Fatal("re-based follower diverged from oracle")
	}
}

func TestPromoteAfterCleanLeaderShutdown(t *testing.T) {
	genesis, steps, digests, users, query := buildDurabilityWorkload(t)
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	leader, err := OpenDurable(durTestDir, genesis, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	fol, err := OpenFollower(durTestDir, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	var final durStep
	for i, s := range steps {
		if i == len(steps)-1 {
			final = s // held back: the promoted follower writes it
			break
		}
		if s.analyze {
			err = leader.Analyze()
		} else {
			err = leader.Apply(s.muts)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	acked := leader.Version()
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}

	if err := fol.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if fol.IsFollower() {
		t.Fatal("IsFollower() still true after Promote")
	}
	if v := fol.Version(); v != acked {
		t.Fatalf("promoted at version %d, want the last acknowledged %d", v, acked)
	}
	if got := engineDigest(t, fol, users, query); got != digests[acked] {
		t.Fatal("promoted state diverged from oracle")
	}
	// The promoted engine owns the log now: the held-back step applies,
	// survives a crash, and recovers — the full leader contract.
	if final.analyze {
		err = fol.Analyze()
	} else {
		err = fol.Apply(final.muts)
	}
	if err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	want := fol.Version()
	if want != acked+1 {
		t.Fatalf("post-promote write at version %d, want %d", want, acked+1)
	}
	fsys.SetCrashAtOp(fsys.Ops())
	fsys.Recover()
	rec, err := OpenDurable(durTestDir, nil, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		t.Fatalf("recovery after promoted write: %v", err)
	}
	if v := rec.Version(); v != want {
		t.Fatalf("promoted write lost: recovered version %d, want %d", v, want)
	}
	if got := engineDigest(t, rec, users, query); got != digests[want] {
		t.Fatal("recovered post-promote state diverged from oracle")
	}
}

// TestReplicationPairDifferential is the tentpole harness: at EVERY
// filesystem operation boundary, under both loss models, crash the
// leader out from under a live-tailing follower and assert that
//
//	(a) every version the follower ever published was digest-identical
//	    to the never-crashed oracle at that version (checked inside
//	    followerPump, record by record), and
//	(b) the follower promotes to exactly the version the dead leader's
//	    own crash recovery would have resumed at — verified against a
//	    twin filesystem driven through the identical schedule without a
//	    follower (follower reads consume no ops, so the crash points
//	    coincide), at or past the last acknowledged write.
func TestReplicationPairDifferential(t *testing.T) {
	genesis, steps, digests, users, query := buildDurabilityWorkload(t)
	for _, tc := range []struct {
		name string
		mode vfs.LossMode
	}{
		{"drop-unsynced", vfs.DropUnsynced},
		{"keep-unsynced", vfs.KeepUnsynced},
	} {
		t.Run(tc.name, func(t *testing.T) {
			golden := vfs.NewFaultFS(tc.mode)
			golden.SetWriteChunk(32)
			if _, err := runDurableWorkload(golden, genesis, steps); err != nil {
				t.Fatal(err)
			}
			totalOps := golden.Ops()

			stride := int64(1)
			if testing.Short() {
				stride = 7
			}
			points, promotions := 0, 0
			for cp := int64(1); cp <= totalOps; cp += stride {
				points++
				fsys := vfs.NewFaultFS(tc.mode)
				fsys.SetWriteChunk(32)
				fsys.SetCrashAtOp(cp)

				leader, err := OpenDurable(durTestDir, genesis, durableTestConfig(), durableTestOpts(fsys))
				if err != nil {
					// Crash before the durable tree exists: nothing to follow,
					// nothing to promote. Single-engine recovery at this point
					// is TestCrashRecoveryDifferential's job.
					continue
				}
				acked := leader.Version()
				fol, err := OpenFollower(durTestDir, durableTestConfig(), durableTestOpts(fsys))
				if err != nil {
					t.Fatalf("crash point %d: leader open succeeded but follower open failed: %v", cp, err)
				}
				lastPub := fol.Version()
				pump := func() error {
					return followerPump(t, fol, &lastPub, digests, users, query)
				}
				if err := pump(); err == nil {
					for _, s := range steps {
						if s.analyze {
							err = leader.Analyze()
						} else {
							err = leader.Apply(s.muts)
						}
						if err != nil {
							break // the leader just died
						}
						acked = leader.Version()
						if err = pump(); err != nil {
							break
						}
					}
					if err == nil {
						err = leader.Close()
					}
				}

				// The machine reboots; the follower process survived with its
				// published state intact (everything it published was synced).
				fsys.Recover()
				if err := pump(); err != nil {
					t.Fatalf("crash point %d: post-recovery catch-up: %v", cp, err)
				}
				if err := fol.Promote(); err != nil {
					t.Fatalf("crash point %d: promote: %v", cp, err)
				}
				promotions++
				vP := fol.Version()
				if vP < acked {
					t.Fatalf("crash point %d: durability violation: acked %d, promoted at %d", cp, acked, vP)
				}
				want, ok := digests[vP]
				if !ok {
					t.Fatalf("crash point %d: promoted to unknown version %d", cp, vP)
				}
				if got := engineDigest(t, fol, users, query); got != want {
					t.Fatalf("crash point %d: promoted state at version %d diverged from oracle", cp, vP)
				}

				// Twin filesystem, identical schedule, no follower: leader
				// crash recovery must land on the same version.
				twin := vfs.NewFaultFS(tc.mode)
				twin.SetWriteChunk(32)
				twin.SetCrashAtOp(cp)
				_, _ = runDurableWorkload(twin, genesis, steps)
				twin.Recover()
				rec, err := OpenDurable(durTestDir, genesis, durableTestConfig(), durableTestOpts(twin))
				if err != nil {
					t.Fatalf("crash point %d: twin recovery failed: %v", cp, err)
				}
				if vR := rec.Version(); vR != vP {
					t.Fatalf("crash point %d: promote landed at version %d, leader recovery at %d", cp, vP, vR)
				}
			}
			t.Logf("verified %d crash points (%d promotions) over %d fs ops (stride %d)",
				points, promotions, totalOps, stride)
		})
	}
}

// TestFollowerConcurrentReads exercises the RCU contract under the race
// detector: queries run against the follower while it replays records
// and while the leader keeps writing.
func TestFollowerConcurrentReads(t *testing.T) {
	genesis, steps, _, users, query := buildDurabilityWorkload(t)
	fsys := vfs.NewFaultFS(vfs.DropUnsynced)
	leader, err := OpenDurable(durTestDir, genesis, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	fol, err := OpenFollower(durTestDir, durableTestConfig(), durableTestOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the replication loop
		defer wg.Done()
		for {
			if _, err := fol.CatchUp(0); err != nil {
				t.Errorf("catch-up: %v", err)
				return
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(u NodeID) { // concurrent readers
			defer wg.Done()
			for {
				if _, err := fol.Search(u, query); err != nil {
					t.Errorf("follower query: %v", err)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(users[i%len(users)])
	}
	for _, s := range steps {
		if s.analyze {
			err = leader.Analyze()
		} else {
			err = leader.Apply(s.muts)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if _, err := fol.CatchUp(0); err != nil {
		t.Fatal(err)
	}
	if v := fol.Version(); v != leader.Version() {
		t.Fatalf("follower converged at %d, leader at %d", v, leader.Version())
	}
}
