package socialscope

import (
	"context"
	"encoding/json"
	"testing"

	"socialscope/internal/obs"
	"socialscope/internal/workload"
)

// traceStats mirrors the span keys recordQuery writes; marshaling both
// the annex and Response.Stats through it gives a byte-for-byte
// comparison that cannot drift from field renames.
type traceStats struct {
	Strategy        string `json:"strategy"`
	SnapshotVersion uint64 `json:"snapshot_version"`
	PostingsScanned int    `json:"postings_scanned"`
	ExactScores     int    `json:"exact_scores"`
	Candidates      int    `json:"candidates"`
	EarlyTerminated bool   `json:"early_terminated"`
}

// TestTracePropagation attaches a span to the request context, runs an
// index-backed query, and asserts the work report the span carries is
// byte-for-byte the one the response reports: the serving layer's
// X-SS-Trace annex and Response.Stats must never disagree.
func TestTracePropagation(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, Config{
		ItemType: "destination", TopK: TopKTA, Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	sp := obs.NewSpan()
	ctx := obs.WithSpan(context.Background(), sp)
	resp, err := eng.SearchCtx(ctx, corpus.Users[0], workload.Categories[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil {
		t.Fatal("keyword query on a TA engine produced no stats")
	}

	var fromSpan traceStats
	annex := sp.Annex()
	if err := json.Unmarshal([]byte(annex), &fromSpan); err != nil {
		t.Fatalf("annex not JSON: %v\n%s", err, annex)
	}
	fromResp := traceStats{
		Strategy:        resp.Stats.Strategy.String(),
		SnapshotVersion: resp.Stats.SnapshotVersion,
		PostingsScanned: resp.Stats.PostingsScanned,
		ExactScores:     resp.Stats.ExactScores,
		Candidates:      resp.Stats.Candidates,
		EarlyTerminated: resp.Stats.EarlyTerminated,
	}
	gotSpan, err := json.Marshal(fromSpan)
	if err != nil {
		t.Fatal(err)
	}
	gotResp, err := json.Marshal(fromResp)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotSpan) != string(gotResp) {
		t.Errorf("span and response disagree:\n span %s\n resp %s\n(annex %s)",
			gotSpan, gotResp, annex)
	}
	if resp.Stats.SnapshotVersion != resp.Version {
		t.Errorf("stats version %d != response version %d",
			resp.Stats.SnapshotVersion, resp.Version)
	}

	// The engine timed both evaluation stages onto the span.
	var m map[string]any
	if err := json.Unmarshal([]byte(annex), &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"discovery_ms", "presentation_ms", "total_ms"} {
		if _, ok := m[k]; !ok {
			t.Errorf("stage timing %q missing from annex %s", k, annex)
		}
	}
}

// TestTracePropagationFusion checks the fusion fallback path annotates
// too: a structural query bypasses the index but still labels the span
// with its strategy and snapshot version.
func TestTracePropagationFusion(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, Config{
		ItemType: "destination", TopK: TopKTA, Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := obs.NewSpan()
	ctx := obs.WithSpan(context.Background(), sp)
	resp, err := eng.SearchCtx(ctx, corpus.Users[0], "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats != nil {
		t.Fatal("empty query should not use the index path")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sp.Annex()), &m); err != nil {
		t.Fatal(err)
	}
	if m["strategy"] != "fusion" {
		t.Errorf("fusion path labeled %v", m["strategy"])
	}
	if m["snapshot_version"] != float64(resp.Version) {
		t.Errorf("span version %v != response version %d", m["snapshot_version"], resp.Version)
	}
}

// TestTraceAbsentIsFree runs the same query with no span on the context:
// instrumentation must be invisible — same results, no annex.
func TestTraceAbsentIsFree(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, Config{
		ItemType: "destination", TopK: TopKTA, Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.SearchCtx(context.Background(), corpus.Users[0], workload.Categories[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil {
		t.Fatal("stats lost without a span")
	}
	if sp := obs.SpanFrom(context.Background()); sp.Annex() != "" {
		t.Fatal("phantom annex")
	}
}
