// Benchmarks regenerating every table and figure of the paper's
// evaluation surface (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for measured results):
//
//	E1 Table 1   — BenchmarkTable1QueryClassification
//	E2 Table 2   — BenchmarkTable2ModelComparison
//	E3 Figure 1  — BenchmarkPipeline (analyze → discover → present)
//	E4 Example 4 — BenchmarkExample4Search
//	E5 Figure 2  — BenchmarkFigure2PatternVsSteps (the §5.4 ablation)
//	E6 §6.2      — BenchmarkSection62IndexBuild / ...TopK (strategy sweep)
//	E7 §7        — BenchmarkGrouping, BenchmarkExplanations
//	E8 Lemma 1   — BenchmarkLemma1Rewrite
//	E9 analyzer  — BenchmarkLDA, BenchmarkApriori
package socialscope

import (
	"fmt"
	"testing"

	"socialscope/internal/analyzer"
	"socialscope/internal/cluster"
	"socialscope/internal/core"
	"socialscope/internal/discovery"
	"socialscope/internal/federation"
	"socialscope/internal/graph"
	"socialscope/internal/index"
	"socialscope/internal/presentation"
	"socialscope/internal/queryclass"
	"socialscope/internal/scoring"
	"socialscope/internal/workload"
)

// --- E1: Table 1 -----------------------------------------------------------

func BenchmarkTable1QueryClassification(b *testing.B) {
	log, err := workload.QueryLog(20000, workload.PaperMixture(), 42)
	if err != nil {
		b.Fatal(err)
	}
	texts := make([]string, len(log))
	for i, q := range log {
		texts[i] = q.Text
	}
	clf := queryclass.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := clf.Summarize(texts)
		if table.Total != len(texts) {
			b.Fatal("classification lost queries")
		}
	}
}

// --- E2: Table 2 -----------------------------------------------------------

func BenchmarkTable2ModelComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := federation.CompareModels()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) != 8 {
			b.Fatal("table shape wrong")
		}
	}
}

// --- E3: Figure 1 pipeline ---------------------------------------------------

func BenchmarkPipeline(b *testing.B) {
	corpus, err := workload.Travel(workload.TravelConfig{Users: 150, Destinations: 60, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(corpus.Graph, Config{ItemType: "destination", Topics: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Analyze(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := eng.Search(corpus.Users[i%len(corpus.Users)], "denver attractions")
		if err != nil {
			b.Fatal(err)
		}
		_ = resp
	}
}

// --- E4: Example 4 -----------------------------------------------------------

func benchTravelGraph(b *testing.B) (*graph.Graph, graph.NodeID) {
	b.Helper()
	corpus, err := workload.Travel(workload.TravelConfig{Users: 200, Destinations: 80, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	return corpus.Graph, corpus.Users[0]
}

func BenchmarkExample4Search(b *testing.B) {
	g, john := benchTravelGraph(b)
	uid := fmt.Sprintf("%d", john)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1 := core.NewCondition(core.Cond("id", uid))
		c2 := core.NewCondition(core.Cond("type", graph.SubtypeFriend))
		c3 := core.NewCondition(core.Cond("type", "destination")).WithKeywords("denver attractions")
		c4 := core.NewCondition(core.Cond("type", graph.SubtypeVisit))
		c5 := core.NewCondition(core.Cond("type", graph.TypeAct))
		g1 := core.LinkSelect(core.SemiJoin(g, core.NodeSelect(g, c1, nil), core.Delta(graph.Src, graph.Src)), c2, nil)
		g2 := core.LinkSelect(core.SemiJoin(g, core.NodeSelect(g, c3, nil), core.Delta(graph.Tgt, graph.Src)), c4, nil)
		g3 := core.SemiJoin(g1, g2, core.Delta(graph.Tgt, graph.Src))
		g4 := core.SemiJoin(g2, g1, core.Delta(graph.Src, graph.Tgt))
		g5, err := core.Union(g3, g4)
		if err != nil {
			b.Fatal(err)
		}
		g6 := core.LinkSelect(core.SemiJoin(g, g3, core.Delta(graph.Src, graph.Tgt)), c5, nil)
		g7, err := core.Union(g5, g6)
		if err != nil {
			b.Fatal(err)
		}
		_ = g7
	}
}

// --- E5: Figure 2 — the paper's posed pattern-vs-steps question --------------

func BenchmarkFigure2PatternVsSteps(b *testing.B) {
	corpus, err := workload.Travel(workload.TravelConfig{
		Users: 150, Destinations: 60, Seed: 19, VisitsPerUser: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []discovery.CFVariant{discovery.CFStepwise, discovery.CFPattern} {
		b.Run(variant.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				user := corpus.Users[i%len(corpus.Users)]
				_, err := discovery.CollaborativeFiltering(corpus.Graph, user, discovery.CFConfig{
					Variant: variant, SimThreshold: 0.2,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: Section 6.2 index study ----------------------------------------------

func benchTagging(b *testing.B) (*index.Data, *graph.Graph) {
	b.Helper()
	corpus, err := workload.Tagging(workload.TaggingConfig{
		Users: 150, Items: 300, Tags: 20, Seed: 23, TagsPerUser: 15,
	})
	if err != nil {
		b.Fatal(err)
	}
	return index.Extract(corpus.Graph), corpus.Graph
}

var indexStrategies = []cluster.Strategy{
	cluster.PerUser, cluster.NetworkBased, cluster.BehaviorBased, cluster.Global,
}

func BenchmarkSection62IndexBuild(b *testing.B) {
	data, g := benchTagging(b)
	for _, s := range indexStrategies {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := cluster.Build(g, s, 0.3)
				if err != nil {
					b.Fatal(err)
				}
				ix, err := index.Build(data, c, scoring.CountF)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ix.EntryCount()), "entries")
			}
		})
	}
}

func BenchmarkSection62IndexTopK(b *testing.B) {
	data, g := benchTagging(b)
	queryTags := data.Tags
	if len(queryTags) > 3 {
		queryTags = queryTags[:3]
	}
	for _, s := range indexStrategies {
		c, err := cluster.Build(g, s, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := index.Build(data, c, scoring.CountF)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(s.String(), func(b *testing.B) {
			exact := 0
			for i := 0; i < b.N; i++ {
				u := data.Users[i%len(data.Users)]
				_, stats, err := ix.TopK(u, queryTags, 10, scoring.SumG)
				if err != nil {
					b.Fatal(err)
				}
				exact += stats.ExactScores
			}
			b.ReportMetric(float64(exact)/float64(b.N), "rescores/op")
		})
	}
}

// --- E7: presentation ----------------------------------------------------------

func benchPresentationInputs(b *testing.B) (*graph.Graph, []graph.NodeID, map[graph.NodeID]float64, graph.NodeID) {
	b.Helper()
	corpus, err := workload.Travel(workload.TravelConfig{Users: 150, Destinations: 80, Seed: 29})
	if err != nil {
		b.Fatal(err)
	}
	items := corpus.Destinations
	scores := make(map[graph.NodeID]float64, len(items))
	for i, it := range items {
		scores[it] = 1 - float64(i)/float64(len(items))
	}
	return corpus.Graph, items, scores, corpus.Users[0]
}

func BenchmarkGrouping(b *testing.B) {
	g, items, scores, _ := benchPresentationInputs(b)
	b.Run("social", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := presentation.SocialGrouping(g, items, scores, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("structural", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			presentation.StructuralGrouping(g, items, scores, "city")
		}
	})
	b.Run("organize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := presentation.Organize(g, items, scores, presentation.OrganizeConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExplanations(b *testing.B) {
	g, items, _, user := benchPresentationInputs(b)
	b.Run("cf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			presentation.ExplainCF(g, user, items[i%len(items)])
		}
	})
	b.Run("content", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			presentation.ExplainContent(g, user, items[i%len(items)])
		}
	})
}

// --- E8: Lemma 1 -----------------------------------------------------------------

func BenchmarkLemma1Rewrite(b *testing.B) {
	g, _ := benchTravelGraph(b)
	sub := core.LinkSelect(g, core.NewCondition(core.Cond("type", graph.SubtypeVisit)), nil)
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.LinkMinus(g, sub)
		}
	})
	b.Run("lemma1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.LinkMinusViaLemma1(g, sub); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E9: analyzer -----------------------------------------------------------------

func BenchmarkLDA(b *testing.B) {
	corpus, err := workload.Travel(workload.TravelConfig{Users: 60, Destinations: 50, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	var docs [][]string
	for _, d := range corpus.Destinations {
		docs = append(docs, scoring.Tokenize(corpus.Graph.Node(d).Text()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.FitLDA(docs, analyzer.LDAConfig{
			Topics: 4, Iterations: 50, Seed: 5, Alpha: 0.1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApriori(b *testing.B) {
	corpus, err := workload.Tagging(workload.TaggingConfig{
		Users: 120, Items: 100, Tags: 12, Seed: 37, TagsPerUser: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	txs := analyzer.TagTransactions(corpus.Graph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := analyzer.Apriori(txs, analyzer.AprioriConfig{MinSupport: 5, MaxLen: 3})
		analyzer.Rules(sets, analyzer.AprioriConfig{MinSupport: 5, MinConfidence: 0.6})
	}
}
