package socialscope

import (
	"strings"
	"testing"

	"socialscope/internal/discovery"
	"socialscope/internal/graph"
	"socialscope/internal/workload"
)

// buildCorpus generates a small deterministic travel site for the
// end-to-end tests.
func buildCorpus(t testing.TB) *workload.TravelCorpus {
	t.Helper()
	c, err := workload.Travel(workload.TravelConfig{Users: 40, Destinations: 25, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEngineEndToEnd(t *testing.T) {
	corpus := buildCorpus(t)
	eng, err := New(corpus.Graph, Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	// Analysis derived topics and matches.
	g := eng.Graph()
	if g.CountNodes(TypeTopic) == 0 {
		t.Error("Analyze derived no topics")
	}
	if g.CountLinks(TypeBelong) == 0 {
		t.Error("Analyze derived no belong links")
	}

	resp, err := eng.Search(corpus.Users[0], "denver attractions")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results()) == 0 {
		t.Fatal("no results for a generic query on a populated corpus")
	}
	for _, r := range resp.Results() {
		if r.Score <= 0 {
			t.Errorf("non-positive score for %d", r.Item)
		}
		// Scoped to destinations.
		if !g.Node(r.Item).HasType("destination") {
			t.Errorf("result %d is not a destination", r.Item)
		}
	}
	if len(resp.Presentation.Chosen.Groups) == 0 {
		t.Error("no presentation groups")
	}
	if len(resp.Explanations) != len(resp.Results()) {
		t.Error("missing explanations")
	}
	if err := resp.MSG.Graph.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEngineWithoutAnalyze(t *testing.T) {
	corpus := buildCorpus(t)
	eng, err := New(corpus.Graph, Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	// Queries work pre-analysis (no topical grouping available).
	resp, err := eng.Search(corpus.Users[1], "museum")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp
	if eng.Graph() != corpus.Graph {
		t.Error("pre-analysis graph should be the original")
	}
}

func TestEngineEmptyQuery(t *testing.T) {
	corpus := buildCorpus(t)
	eng, err := New(corpus.Graph, Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Search(corpus.Users[2], "")
	if err != nil {
		t.Fatal(err)
	}
	// Empty query: pure social recommendations (friends' endorsements).
	for _, r := range resp.Results() {
		if r.Semantic != 0 {
			t.Error("empty query produced semantic relevance")
		}
	}
}

func TestEngineRecommendVariantsAgree(t *testing.T) {
	corpus := buildCorpus(t)
	eng, err := New(corpus.Graph, Config{ItemType: "destination", MatchThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	user := corpus.Users[3]
	step, err := eng.Recommend(user, discovery.CFStepwise)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := eng.Recommend(user, discovery.CFPattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(step) != len(pat) {
		t.Fatalf("variant recommendation counts differ: %d vs %d", len(step), len(pat))
	}
	for i := range step {
		if step[i].Item != pat[i].Item {
			t.Errorf("variant order differs at %d: %v vs %v", i, step[i], pat[i])
		}
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	corpus := buildCorpus(t)
	eng, err := New(corpus.Graph, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(999999, "x"); err == nil {
		t.Error("unknown user accepted")
	}
	if _, err := eng.Search(corpus.Users[0], "rating>="); err == nil {
		t.Error("malformed query accepted")
	}
}

func TestFacadeReExports(t *testing.T) {
	b := NewBuilder()
	u := b.Node([]string{TypeUser}, "name", "u")
	i := b.Node([]string{TypeItem}, "name", "i")
	b.Link(u, i, []string{TypeAct, SubtypeVisit})
	g := b.Graph()
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Error("facade builder broken")
	}
	if NewGraph().NumNodes() != 0 {
		t.Error("NewGraph broken")
	}
	// Type aliases interoperate with internal packages.
	var id NodeID = u
	if !g.HasNode(graph.NodeID(id)) {
		t.Error("NodeID alias broken")
	}
	for _, s := range []string{TypeUser, TypeItem, TypeTopic, TypeGroup, TypeConnect,
		TypeAct, TypeMatch, TypeBelong, SubtypeFriend, SubtypeTag, SubtypeVisit, SubtypeReview} {
		if strings.TrimSpace(s) == "" {
			t.Error("empty type constant")
		}
	}
}

func TestEngineStructuredQuery(t *testing.T) {
	corpus := buildCorpus(t)
	eng, err := New(corpus.Graph, Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Search(corpus.Users[0], "city:denver rating>=0.5")
	if err != nil {
		t.Fatal(err)
	}
	g := eng.Graph()
	for _, r := range resp.Results() {
		n := g.Node(r.Item)
		if n.Attrs.Get("city") != "denver" {
			t.Errorf("result %d outside the structural scope", r.Item)
		}
		if v, _ := n.Attrs.Float("rating"); v < 0.5 {
			t.Errorf("result %d violates rating predicate", r.Item)
		}
	}
}

func TestEngineRelatedEntities(t *testing.T) {
	corpus := buildCorpus(t)
	eng, err := New(corpus.Graph, Config{ItemType: "destination"})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze(); err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Search(corpus.Users[0], "attractions")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results()) == 0 {
		t.Skip("no results to relate")
	}
	// After Analyze every destination belongs to a topic, so a non-empty
	// result set must surface related topics.
	if len(resp.Related.Topics) == 0 {
		t.Error("no related topics after analysis")
	}
	for _, rt := range resp.Related.Topics {
		if !eng.Graph().Node(rt.Topic).HasType(TypeTopic) {
			t.Errorf("related topic %d is not a topic node", rt.Topic)
		}
	}
}
