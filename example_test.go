package socialscope_test

import (
	"fmt"

	"socialscope"
)

// Example demonstrates the three-layer pipeline on a hand-built site:
// Ann's endorsement makes the baseball stadium socially relevant to John's
// "denver" query.
func Example() {
	b := socialscope.NewBuilder()
	john := b.Node([]string{socialscope.TypeUser}, "name", "John")
	ann := b.Node([]string{socialscope.TypeUser}, "name", "Ann")
	stadium := b.Node([]string{socialscope.TypeItem, "destination"},
		"name", "Coors Field", "city", "denver", "keywords", "baseball denver")
	park := b.Node([]string{socialscope.TypeItem, "destination"},
		"name", "City Park", "city", "denver", "keywords", "park denver")
	b.Link(john, ann, []string{socialscope.TypeConnect, socialscope.SubtypeFriend})
	b.Link(ann, stadium, []string{socialscope.TypeAct, socialscope.SubtypeVisit})

	eng, err := socialscope.New(b.Graph(), socialscope.Config{ItemType: "destination"})
	if err != nil {
		panic(err)
	}
	resp, err := eng.Search(john, "denver")
	if err != nil {
		panic(err)
	}
	for _, r := range resp.Results() {
		name := eng.Graph().Node(r.Item).Attrs.Get("name")
		fmt.Printf("%s social=%.1f\n", name, r.Social)
	}
	_ = park
	// Output:
	// Coors Field social=1.0
	// City Park social=0.0
}
