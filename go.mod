module socialscope

go 1.24
