package socialscope

import (
	"reflect"
	"testing"

	"socialscope/internal/workload"
)

// topkCorpus is a tagging-heavy travel site so category keywords hit the
// activity-driven index.
func topkCorpus(t testing.TB) *workload.TravelCorpus {
	t.Helper()
	c, err := workload.Travel(workload.TravelConfig{
		Users: 50, Destinations: 30, Seed: 7, VisitsPerUser: 8, TagFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEngineTopKStrategiesAgree runs the same keyword query through every
// index-backed strategy: the rankings must match the exhaustive baseline
// exactly, and the early-terminating ones must report less work.
func TestEngineTopKStrategiesAgree(t *testing.T) {
	corpus := topkCorpus(t)
	query := workload.Categories[0] + " " + workload.Categories[4]
	baseline := make(map[int][]struct {
		item  NodeID
		score float64
	})
	for _, strat := range []TopKStrategy{TopKExhaustive, TopKTA, TopKNRA} {
		eng, err := New(corpus.Graph, Config{ItemType: "destination", TopK: strat})
		if err != nil {
			t.Fatal(err)
		}
		for ui, u := range corpus.Users[:10] {
			resp, err := eng.Search(u, query)
			if err != nil {
				t.Fatal(err)
			}
			stats, ok := eng.LastSearchStats()
			if !ok || stats.Strategy != strat {
				t.Fatalf("%s: stats missing or mislabeled: %+v ok=%v", strat, stats, ok)
			}
			var got []struct {
				item  NodeID
				score float64
			}
			for _, r := range resp.Results() {
				got = append(got, struct {
					item  NodeID
					score float64
				}{r.Item, r.Score})
			}
			if strat == TopKExhaustive {
				baseline[ui] = got
			} else if !reflect.DeepEqual(baseline[ui], got) {
				t.Errorf("%s user %d: results diverge from exhaustive\n got %v\nwant %v",
					strat, u, got, baseline[ui])
			}
		}
	}
}

// TestEngineTopKSavesWork asserts the facade path inherits the early
// termination: TA scans fewer postings than the exhaustive strategy.
func TestEngineTopKSavesWork(t *testing.T) {
	corpus := topkCorpus(t)
	query := workload.Categories[0]
	work := make(map[TopKStrategy]int)
	for _, strat := range []TopKStrategy{TopKExhaustive, TopKTA} {
		eng, err := New(corpus.Graph, Config{ItemType: "destination", TopK: strat})
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range corpus.Users[:10] {
			if _, err := eng.Search(u, query); err != nil {
				t.Fatal(err)
			}
			st, _ := eng.LastSearchStats()
			work[strat] += st.PostingsScanned
		}
	}
	if work[TopKTA] >= work[TopKExhaustive] {
		t.Errorf("TA scanned %d postings, exhaustive %d — no savings through the facade",
			work[TopKTA], work[TopKExhaustive])
	}
}

// TestEngineTopKFallsBack checks structural and empty queries keep using
// the fusion path even when an index strategy is configured.
func TestEngineTopKFallsBack(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, Config{ItemType: "destination", TopK: TopKTA})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"", "city:paris"} {
		if _, err := eng.Search(corpus.Users[0], q); err != nil {
			t.Fatalf("fallback query %q: %v", q, err)
		}
		if _, ok := eng.LastSearchStats(); ok {
			t.Errorf("query %q should not have used the index path", q)
		}
	}
}

func TestEngineTopKBadCluster(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, Config{
		ItemType: "destination", TopK: TopKTA, ClusterStrategy: "bogus",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(corpus.Users[0], "museum"); err == nil {
		t.Error("bogus cluster strategy accepted")
	}
}

// TestEngineTopKConcurrentSearch serves tagged queries from multiple
// goroutines — meaningful under -race, guarding the lazily built
// processor and the stats slot.
func TestEngineTopKConcurrentSearch(t *testing.T) {
	corpus := topkCorpus(t)
	eng, err := New(corpus.Graph, Config{ItemType: "destination", TopK: TopKTA})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(u NodeID) {
			_, err := eng.Search(u, workload.Categories[0])
			eng.LastSearchStats()
			done <- err
		}(corpus.Users[i])
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestTopKStrategyString(t *testing.T) {
	for s, want := range map[TopKStrategy]string{
		TopKOff: "off", TopKExhaustive: "exhaustive", TopKTA: "ta",
		TopKNRA: "nra", TopKStrategy(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
